"""The REPLICA benchmark case study (Section 6.1, ``Swap.v``).

Reconstructs the user-study benchmark of Figure 16: a simple expression
language ``Term`` whose ``Int`` and ``Eq`` constructors the proof
engineer swapped, together with an ``EpsilonLogic``-style semantics and
the ``eval_eq_true_or_false`` theorem, all repaired automatically.

The module also builds the benchmark *variants* the paper reports:

* swapping two constructors with the same type (``Plus``/``Times``),
* renaming all constructors,
* permuting more than two constructors (a 3-cycle),
* permuting and renaming at the same time, and
* a "large and ambiguous permutation of a 30 constructor Enum".

With the Figure 16 signature (four binary constructors of identical
type), there are exactly ``4! = 24`` type-correct constructor mappings —
the paper's "all other 23 type-correct permutations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.caching import TransformCache
from ..core.repair import RepairResult, RepairSession
from ..core.search.swap import find_constructor_mappings, swap_configuration
from ..kernel.env import Environment
from ..kernel.inductive import ConstructorDecl, InductiveDecl
from ..kernel.term import Ind, SET, Term
from ..stdlib import make_env
from ..syntax.parser import parse

#: Constructor layout of Figure 16 (left): name -> argument type names.
TERM_CONSTRUCTORS = [
    ("Var", ["Identifier"]),
    ("Int", ["Z"]),
    ("Eq", ["<self>", "<self>"]),
    ("Plus", ["<self>", "<self>"]),
    ("Times", ["<self>", "<self>"]),
    ("Minus", ["<self>", "<self>"]),
    ("Choose", ["Identifier", "<self>"]),
]


def declare_term_language(
    env: Environment,
    name: str,
    order: Optional[Sequence[str]] = None,
    renames: Optional[Dict[str, str]] = None,
) -> None:
    """Declare a ``Term``-style language, optionally reordered/renamed."""
    layout = {ctor: args for ctor, args in TERM_CONSTRUCTORS}
    order = list(order or [ctor for ctor, _ in TERM_CONSTRUCTORS])
    renames = renames or {}

    def arg_type(spec: str) -> Term:
        if spec == "<self>":
            return Ind(name)
        return parse(env, spec)

    constructors = tuple(
        ConstructorDecl(
            renames.get(ctor, ctor),
            args=tuple(
                (f"t{i}", arg_type(spec))
                for i, spec in enumerate(layout[ctor])
            ),
        )
        for ctor in order
    )
    env.declare_inductive(
        InductiveDecl(
            name=name,
            params=(),
            indices=(),
            sort=SET,
            constructors=constructors,
        )
    )


def setup_environment() -> Environment:
    """Build the environment of the benchmark: language + semantics."""
    from ..stdlib.recordlib import declare_record

    env = make_env(lists=False, vectors=False)
    env.define("Identifier", parse(env, "nat"))
    env.define("Z", parse(env, "nat"))

    declare_term_language(env, "Old.Term")

    # A small but real semantics: nat equality, subtraction, and the
    # EpsilonLogic record holding the truth values.
    env.define(
        "eqb",
        parse(
            env,
            """
            fun (n : nat) =>
              Elim[nat](n; fun (_ : nat) => nat -> bool)
                { fun (m : nat) =>
                    Elim[nat](m; fun (_ : nat) => bool)
                      { true, fun (q : nat) (IH2 : bool) => false },
                  fun (p : nat) (IH : nat -> bool) (m : nat) =>
                    Elim[nat](m; fun (_ : nat) => bool)
                      { false, fun (q : nat) (IH2 : bool) => IH q } }
            """,
        ),
    )
    env.define(
        "sub",
        parse(
            env,
            """
            fun (n m : nat) =>
              Elim[nat](m; fun (_ : nat) => nat)
                { n, fun (p IH : nat) => pred IH }
            """,
        ),
    )
    declare_record(
        env,
        "EpsilonLogic",
        [("vTrue", parse(env, "nat")), ("vFalse", parse(env, "nat"))],
        constructor="MkLogic",
    )
    env.define(
        "eval",
        parse(
            env,
            """
            fun (L : EpsilonLogic) (env0 : Identifier -> nat)
                (t : Old.Term) =>
              Elim[Old.Term](t; fun (_ : Old.Term) => nat)
                { fun (i : Identifier) => env0 i,
                  fun (z : Z) => z,
                  fun (t1 : Old.Term) (v1 : nat)
                      (t2 : Old.Term) (v2 : nat) =>
                    Elim[bool](eqb v1 v2; fun (_ : bool) => nat)
                      { vTrue L, vFalse L },
                  fun (t1 : Old.Term) (v1 : nat)
                      (t2 : Old.Term) (v2 : nat) => add v1 v2,
                  fun (t1 : Old.Term) (v1 : nat)
                      (t2 : Old.Term) (v2 : nat) => mul v1 v2,
                  fun (t1 : Old.Term) (v1 : nat)
                      (t2 : Old.Term) (v2 : nat) => sub v1 v2,
                  fun (i : Identifier) (t1 : Old.Term) (v1 : nat) => v1 }
            """,
        ),
    )
    _prove_eval_theorem(env)
    return env


def _prove_eval_theorem(env: Environment) -> None:
    """The benchmark theorem about the ``EpsilonLogic`` semantics."""
    from ..tactics.engine import prove
    from ..tactics.tactics import (
        destruct,
        intros,
        left,
        reflexivity,
        right,
        simpl,
    )

    stmt = parse(
        env,
        """
        forall (L : EpsilonLogic) (env0 : Identifier -> nat)
               (t1 t2 : Old.Term),
          or (eq nat (eval L env0 (Eq t1 t2)) (vTrue L))
             (eq nat (eval L env0 (Eq t1 t2)) (vFalse L))
        """,
    )
    env.define(
        "eval_eq_true_or_false",
        prove(
            env,
            stmt,
            intros("L", "env0", "t1", "t2"),
            simpl(),
            destruct("eqb (eval L env0 t1) (eval L env0 t2)"),
            left(),
            reflexivity(),
            right(),
            reflexivity(),
        ),
        type=stmt,
    )


@dataclass
class ReplicaVariant:
    """One benchmark variant: the new type and the repair results."""

    label: str
    new_type: str
    mapping: Tuple[int, ...]
    results: List[RepairResult]


#: The variants of Section 6.1.2/6.1.3, as (label, order, renames).
VARIANTS = [
    (
        "swap Int/Eq (Figure 16)",
        ["Var", "Eq", "Int", "Plus", "Times", "Minus", "Choose"],
        {},
    ),
    (
        "swap same-type Plus/Times",
        ["Var", "Int", "Eq", "Times", "Plus", "Minus", "Choose"],
        {},
    ),
    (
        "rename all constructors",
        None,
        {
            "Var": "Atom",
            "Int": "Lit",
            "Eq": "Equal",
            "Plus": "Add",
            "Times": "Mul",
            "Minus": "Sub",
            "Choose": "Epsilon",
        },
    ),
    (
        "permute three constructors",
        ["Var", "Int", "Eq", "Times", "Minus", "Plus", "Choose"],
        {},
    ),
    (
        "permute and rename at once",
        ["Var", "Eq", "Int", "Minus", "Times", "Plus", "Choose"],
        {"Plus": "Add", "Minus": "Sub"},
    ),
]

#: Explicit mappings for variants where the intended assignment is
#: ambiguous (the paper passes "the argument mapping 0" in such cases;
#: here the human picks the mapping outright).
VARIANT_MAPPINGS = {
    "permute and rename at once": (0, 2, 1, 5, 4, 3, 6),
}


def run_variant(
    env: Environment,
    label: str,
    order: Optional[Sequence[str]],
    renames: Dict[str, str],
    index: int,
    cache: Optional[TransformCache] = None,
    mapping: Optional[Sequence[int]] = None,
) -> ReplicaVariant:
    """Declare a variant type and repair the whole development onto it."""
    new_name = f"New{index}.Term"
    declare_term_language(env, new_name, order=order, renames=renames)
    config = swap_configuration(env, "Old.Term", new_name, mapping=mapping)
    session = RepairSession(
        env,
        config,
        old_globals=["Old.Term"],
        rename=lambda n: f"New{index}.{n}",
        cache=cache,
    )
    results = session.repair_module(
        ["eval", "eval_eq_true_or_false"]
    )
    chosen = tuple(config.b.perm)
    return ReplicaVariant(
        label=label, new_type=new_name, mapping=chosen, results=results
    )


def run_scenario(cache: Optional[TransformCache] = None) -> List[ReplicaVariant]:
    """Run every variant of the benchmark on a fresh environment."""
    env = setup_environment()
    variants = []
    for i, (label, order, renames) in enumerate(VARIANTS):
        variants.append(
            run_variant(
                env,
                label,
                order,
                renames,
                i,
                cache=cache,
                mapping=VARIANT_MAPPINGS.get(label),
            )
        )
    return variants


def count_type_correct_mappings(env: Environment, new_name: str) -> int:
    """Count the type-correct mappings (24 for the Figure 16 change)."""
    return sum(
        1 for _ in find_constructor_mappings(env, "Old.Term", new_name)
    )


def declare_enum(env: Environment, name: str, size: int = 30) -> None:
    """A ``size``-constructor enumeration (the paper's ambiguous Enum)."""
    env.declare_inductive(
        InductiveDecl(
            name=name,
            params=(),
            indices=(),
            sort=SET,
            constructors=tuple(
                ConstructorDecl(f"{name}.c{i}", args=()) for i in range(size)
            ),
        )
    )
