"""The industrial case study (Section 6.4): tuples to records and back.

Reconstructs the Galois workflow of Figure 17 on our own substrates:

1. compiler-generated nested tuples ``Galois.Handshake`` /
   ``Galois.Connection`` with the ``cork`` function over bitvectors,
2. the named records ``Record.Handshake`` / ``Record.Connection``,
3. repair of ``cork`` from tuples to records (two passes, one per
   equivalence, composing as the paper describes),
4. a human-written ``corkLemma`` about the record version, and
5. repair of ``corkLemma`` *back* to the original tuples — the round trip
   that let the proof engineer integrate Coq output with the solver-aided
   pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.caching import TransformCache
from ..core.config import Configuration
from ..core.repair import RepairResult, RepairSession
from ..core.search.tuples_records import tuples_records_configuration
from ..kernel.env import Environment
from ..kernel.term import Term
from ..stdlib import declare_record, make_env
from ..syntax.parser import parse

HANDSHAKE_FIELDS = [
    ("handshakeType", "seq 32 bool"),
    ("messageNumber", "seq 32 bool"),
]

CONNECTION_FIELDS = [
    ("clientAuthFlag", "bool"),
    ("corked", "seq 2 bool"),
    ("corkedIO", "seq 8 bool"),
    ("handshake", "Record.Handshake"),
    ("isCachingEnabled", "bool"),
    ("keyExchangeEPH", "bool"),
    ("mode", "seq 32 bool"),
    ("resumeFromCache", "bool"),
    ("serverCanSendOCSP", "bool"),
]


@dataclass
class GaloisScenario:
    """Everything the Section 6.4 example builds, for tests and benches."""

    env: Environment
    handshake_config: Configuration
    connection_config: Configuration
    cork_result: RepairResult
    cork_lemma_record: Term
    cork_lemma_tuple: RepairResult


def setup_environment() -> Environment:
    """Build the environment with tuples, records, and ``cork``."""
    env = make_env(lists=False, vectors=True, bitvectors=True)

    # Compiler-generated tuple types (Figure 17, left).
    env.define(
        "Galois.Handshake",
        parse(env, "prod (seq 32 bool) (seq 32 bool)"),
    )
    env.define(
        "Galois.Connection",
        parse(
            env,
            """
            prod bool (prod (seq 2 bool) (prod (seq 8 bool)
              (prod Galois.Handshake (prod bool (prod bool
                (prod (seq 32 bool) (prod bool bool)))))))
            """,
        ),
    )

    # Human-readable records (Figure 17, right).
    declare_record(
        env,
        "Record.Handshake",
        [(f, parse(env, t)) for f, t in HANDSHAKE_FIELDS],
        constructor="MkHandshake",
    )
    declare_record(
        env,
        "Record.Connection",
        [(f, parse(env, t)) for f, t in CONNECTION_FIELDS],
        constructor="MkConnection",
    )

    # The compiler-generated cork function (Section 6.4.2), written with
    # the projection chains saw-core emits.
    rest = _tuple_rests(env)
    env.define(
        "cork",
        parse(
            env,
            f"""
            fun (c : Galois.Connection) =>
              pair bool ({rest[1]})
                (fst bool ({rest[1]}) c)
                (pair (seq 2 bool) ({rest[2]})
                   (bvAdd 2
                      (fst (seq 2 bool) ({rest[2]})
                         (snd bool ({rest[1]}) c))
                      (bvNat 2 1))
                   (snd (seq 2 bool) ({rest[2]})
                      (snd bool ({rest[1]}) c)))
            """,
        ),
        type=parse(env, "Galois.Connection -> Galois.Connection"),
    )
    return env


def _tuple_rests(env: Environment) -> List[str]:
    """Surface syntax for the nested tails of the Connection tuple."""
    field_types = [t for _f, t in CONNECTION_FIELDS]
    # Phase 0 (raw tuples): the handshake field is the tuple alias.
    field_types[3] = "Galois.Handshake"
    rests = [""] * len(field_types)
    rests[-1] = field_types[-1]
    for i in reversed(range(len(field_types) - 1)):
        rests[i] = f"prod ({field_types[i]}) ({rests[i + 1]})"
    return rests


def run_scenario(cache: TransformCache = None) -> GaloisScenario:
    """Run the full Section 6.4 workflow; return all artifacts."""
    from ..tactics.engine import prove
    from ..tactics.tactics import intros, reflexivity, rewrite, simpl

    env = setup_environment()

    # Pass 1: Handshake tuples -> Handshake records.  This also rewrites
    # the Connection tuple type and cork, which mention the alias.
    handshake_config = tuples_records_configuration(
        env, "Record.Handshake", tuple_alias="Galois.Handshake"
    )
    session1 = RepairSession(
        env,
        handshake_config,
        old_globals=["Galois.Handshake"],
        rename=lambda n: f"{n}'",
        cache=cache,
    )
    session1.repair_module()

    # Pass 2: Connection tuples (now containing Handshake records) ->
    # Connection records.
    connection_config = tuples_records_configuration(
        env, "Record.Connection", tuple_alias="Galois.Connection'"
    )
    session2 = RepairSession(
        env,
        connection_config,
        old_globals=["Galois.Connection'"],
        rename=lambda n: n.replace("'", "") + ".record",
        cache=cache,
    )
    cork_result = session2.repair_constant("cork'", new_name="Record.cork")

    # The proof engineer writes a proof about the record version...
    cork_lemma_stmt = parse(
        env,
        """
        forall (c : Record.Connection),
          eq (seq 2 bool) (corked c) (bvNat 2 0) ->
          eq (seq 2 bool) (corked (Record.cork c)) (bvNat 2 1)
        """,
    )
    cork_lemma_record = prove(
        env,
        cork_lemma_stmt,
        intros("c", "H"),
        simpl(),
        rewrite("H"),
        reflexivity(),
    )
    env.define("Record.corkLemma", cork_lemma_record, type=cork_lemma_stmt)

    # ... and ports it back to the original tuples (both passes reversed).
    back2 = RepairSession(
        env,
        connection_config.reversed(),
        old_globals=["Record.Connection"],
        rename=lambda n: n.replace("Record.", "") + ".tupled",
        cache=cache,
    )
    lemma_mid = back2.repair_constant(
        "Record.corkLemma", new_name="corkLemma.mid"
    )
    back1 = RepairSession(
        env,
        handshake_config.reversed(),
        old_globals=["Record.Handshake"],
        rename=lambda n: n.replace(".mid", ""),
        cache=cache,
    )
    cork_lemma_tuple = back1.repair_constant(
        "corkLemma.mid", new_name="corkLemma"
    )

    return GaloisScenario(
        env=env,
        handshake_config=handshake_config,
        connection_config=connection_config,
        cork_result=cork_result,
        cork_lemma_record=cork_lemma_record,
        cork_lemma_tuple=cork_lemma_tuple,
    )
