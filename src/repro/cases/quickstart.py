"""The Section 2 motivating example: swapping the list constructors.

``Old.list`` is the standard library list (Figure 1, left); ``New.list``
swaps ``nil`` and ``cons`` (right).  ``Repair Old.list New.list in
rev_app_distr`` repairs the broken proof — and its dependencies ``rev``,
``app``, ``app_assoc`` and ``app_nil_r`` — automatically, then the
decompiler produces the Figure 2 tactic script.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.caching import TransformCache
from ..core.config import Configuration
from ..core.repair import RepairResult, RepairSession
from ..core.search.swap import swap_configuration
from ..decompile.decompiler import decompile_to_script, print_script
from ..decompile.qtac import Script
from ..kernel.env import Environment
from ..stdlib import declare_list_type, make_env


@dataclass
class QuickstartScenario:
    """Artifacts of the Section 2 example."""

    env: Environment
    config: Configuration
    result: RepairResult
    script: Script
    script_text: str
    module_results: List[RepairResult]


def setup_environment() -> Environment:
    """The standard list development plus the swapped ``New.list``."""
    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    return env


def run_scenario(
    cache: Optional[TransformCache] = None,
    whole_module: bool = True,
) -> QuickstartScenario:
    """Repair ``rev_app_distr`` (and optionally the whole module)."""
    env = setup_environment()
    config = swap_configuration(env, "list", "New.list")
    session = RepairSession(
        env,
        config,
        old_globals=["list"],
        rename=lambda n: f"New.{n}",
        cache=cache,
    )
    result = session.repair_constant("rev_app_distr")
    script = decompile_to_script(env, result.term)
    script_text = print_script(script, name=result.new_name)
    result.script = script_text

    module_results: List[RepairResult] = []
    if whole_module:
        module_results = session.repair_module()
        session.remove_old()
    return QuickstartScenario(
        env=env,
        config=config,
        result=result,
        script=script,
        script_text=script_text,
        module_results=module_results,
    )
