"""The vectors-from-lists case study (Section 6.2, ``Example.v``).

The full pipeline the paper demonstrates:

1. prove ``zip_with_is_zip`` over lists (done in the stdlib), plus the
   *length invariant* the proof engineer must supply
   (``zip_preserves_length``);
2. ``Repair module`` across the ornament configuration — the Devoid
   step — giving the packed-vector versions automatically;
3. unpack to vectors at a *particular* length using the second
   configuration's machinery (``vector_cast``/``unpack``/
   ``unpack_coherence``), giving::

       zip_with_is_zip_vect : forall A B n (v1 : vector A n)
           (v2 : vector B n), zipv_with pair n v1 v2 = zipv n v1 v2

   where Devoid "leaves this step to the proof engineer" and Pumpkin Pi
   automates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.caching import TransformCache
from ..core.config import Configuration
from ..core.repair import RepairResult, RepairSession
from ..core.search.ornaments import ornament_configuration
from ..core.search.unpack import declare_unpack_support
from ..kernel.env import Environment
from ..kernel.term import Term
from ..stdlib import make_env
from ..syntax.parser import parse


@dataclass
class OrnamentScenario:
    """Artifacts of the Section 6.2 workflow."""

    env: Environment
    config: Configuration
    packed_results: List[RepairResult]
    zip_vect: Term
    zip_with_vect: Term
    zip_with_is_zip_vect: Term


def declare_length_invariant(env: Environment) -> None:
    """The user-supplied invariant: zipping preserves equal lengths."""
    from ..tactics.engine import prove
    from ..tactics.tactics import (
        apply,
        discriminate,
        exact,
        induction,
        intro,
        intros,
        reflexivity,
    )

    if env.has_constant("zip_preserves_length"):
        return
    stmt = parse(
        env,
        """
        forall (A B : Type1) (l1 : list A) (l2 : list B),
          eq nat (length A l1) (length B l2) ->
          eq nat (length (prod A B) (zip A B l1 l2)) (length A l1)
        """,
    )
    env.define(
        "zip_preserves_length",
        prove(
            env,
            stmt,
            intros("A", "B", "l1"),
            induction("l1", names=[[], ["a", "l1x", "IHl1"]]),
            intros("l2", "H"),
            reflexivity(),
            intro("l2"),
            induction("l2", names=[[], ["b", "l2x", "IHl2"]]),
            intro("H"),
            discriminate("H"),
            intro("H"),
            apply("f_equal nat nat (fun (k : nat) => S k)"),
            exact(
                "IHl1 l2x (f_equal nat nat (fun (k : nat) => pred k) "
                "(length A (cons A a l1x)) (length B (cons B b l2x)) H)"
            ),
        ),
        type=stmt,
    )


def declare_length_pi(env: Environment) -> None:
    """The ported length agrees with the packed index (``projT1``)."""
    from ..tactics.engine import prove
    from ..tactics.tactics import induction, intros, reflexivity, rewrite, simpl

    if env.has_constant("length_pi"):
        return
    stmt = parse(
        env,
        """
        forall (T : Type1) (s : sigT nat (fun (n : nat) => vector T n)),
          eq nat (Packed.length T (ornament.eta T s))
                 (projT1 nat (fun (n : nat) => vector T n) s)
        """,
    )
    env.define(
        "length_pi",
        prove(
            env,
            stmt,
            intros("T", "s"),
            induction("s", names=[["n", "v"]]),
            induction("v", names=[[], ["t", "m", "w", "IHw"]]),
            reflexivity(),
            simpl(),
            rewrite("IHw"),
            reflexivity(),
        ),
        type=stmt,
    )


def run_scenario(cache: Optional[TransformCache] = None) -> OrnamentScenario:
    """Run the full Section 6.2 workflow; return all artifacts."""
    env = make_env(lists=True, vectors=True)
    declare_length_invariant(env)

    # Step 1: the Devoid repair, packed vectors.
    config = ornament_configuration(env)
    session = RepairSession(
        env,
        config,
        old_globals=["list"],
        rename=lambda n: f"Packed.{n}",
        cache=cache,
        skip=[
            "ornament.eta",
            "ornament.dep_constr_0",
            "ornament.dep_constr_1",
            "ornament.promote",
            "ornament.forget",
            "ornament.forget_vec",
        ],
    )
    packed = session.repair_module(
        ["zip", "zip_with", "zip_with_is_zip", "zip_preserves_length"]
    )

    # Step 2: unpack to vectors at a particular index.
    declare_unpack_support(env)
    declare_length_pi(env)

    packed_ty = "sigT nat (fun (k : nat) => vector {0} k)"
    pack = "existT nat (fun (k : nat) => vector {0} k) n {1}"

    # The index fact for zip, threaded from the ported invariant.
    env.define(
        "zip_index",
        parse(
            env,
            f"""
            fun (A B : Type1) (n : nat) (v1 : vector A n) (v2 : vector B n) =>
              eq_trans nat
                (projT1 nat (fun (k : nat) => vector (prod A B) k)
                   (Packed.zip A B
                      (ornament.eta A ({pack.format('A', 'v1')}))
                      (ornament.eta B ({pack.format('B', 'v2')}))))
                (Packed.length (prod A B)
                   (ornament.eta (prod A B)
                      (Packed.zip A B
                         (ornament.eta A ({pack.format('A', 'v1')}))
                         (ornament.eta B ({pack.format('B', 'v2')})))))
                n
                (eq_sym nat
                   (Packed.length (prod A B)
                      (ornament.eta (prod A B)
                         (Packed.zip A B
                            (ornament.eta A ({pack.format('A', 'v1')}))
                            (ornament.eta B ({pack.format('B', 'v2')})))))
                   (projT1 nat (fun (k : nat) => vector (prod A B) k)
                      (Packed.zip A B
                         (ornament.eta A ({pack.format('A', 'v1')}))
                         (ornament.eta B ({pack.format('B', 'v2')}))))
                   (length_pi (prod A B)
                      (Packed.zip A B
                         (ornament.eta A ({pack.format('A', 'v1')}))
                         (ornament.eta B ({pack.format('B', 'v2')})))))
                (eq_trans nat
                   (Packed.length (prod A B)
                      (ornament.eta (prod A B)
                         (Packed.zip A B
                            (ornament.eta A ({pack.format('A', 'v1')}))
                            (ornament.eta B ({pack.format('B', 'v2')})))))
                   (Packed.length A
                      (ornament.eta A ({pack.format('A', 'v1')})))
                   n
                   (Packed.zip_preserves_length A B
                      ({pack.format('A', 'v1')})
                      ({pack.format('B', 'v2')})
                      (eq_trans nat
                         (Packed.length A
                            (ornament.eta A ({pack.format('A', 'v1')})))
                         (projT1 nat (fun (k : nat) => vector A k)
                            ({pack.format('A', 'v1')}))
                         (Packed.length B
                            (ornament.eta B ({pack.format('B', 'v2')})))
                         (length_pi A ({pack.format('A', 'v1')}))
                         (eq_sym nat
                            (Packed.length B
                               (ornament.eta B ({pack.format('B', 'v2')})))
                            (projT1 nat (fun (k : nat) => vector B k)
                               ({pack.format('B', 'v2')}))
                            (length_pi B ({pack.format('B', 'v2')})))))
                   (length_pi A ({pack.format('A', 'v1')})))
            """,
        ),
    )

    # zip and zip_with over vectors at a particular length.
    env.define(
        "zipv",
        parse(
            env,
            f"""
            fun (A B : Type1) (n : nat) (v1 : vector A n) (v2 : vector B n) =>
              unpack (prod A B) n
                (Packed.zip A B
                   (ornament.eta A ({pack.format('A', 'v1')}))
                   (ornament.eta B ({pack.format('B', 'v2')})))
                (zip_index A B n v1 v2)
            """,
        ),
    )
    env.define(
        "zipv_with_index",
        parse(
            env,
            f"""
            fun (A B : Type1) (n : nat) (v1 : vector A n) (v2 : vector B n) =>
              eq_trans nat
                (projT1 nat (fun (k : nat) => vector (prod A B) k)
                   (Packed.zip_with A B (prod A B) (pair A B)
                      (ornament.eta A ({pack.format('A', 'v1')}))
                      (ornament.eta B ({pack.format('B', 'v2')}))))
                (projT1 nat (fun (k : nat) => vector (prod A B) k)
                   (Packed.zip A B
                      (ornament.eta A ({pack.format('A', 'v1')}))
                      (ornament.eta B ({pack.format('B', 'v2')}))))
                n
                (f_equal
                   (sigT nat (fun (k : nat) => vector (prod A B) k)) nat
                   (fun (s : sigT nat
                               (fun (k : nat) => vector (prod A B) k)) =>
                      projT1 nat (fun (k : nat) => vector (prod A B) k) s)
                   (Packed.zip_with A B (prod A B) (pair A B)
                      (ornament.eta A ({pack.format('A', 'v1')}))
                      (ornament.eta B ({pack.format('B', 'v2')})))
                   (Packed.zip A B
                      (ornament.eta A ({pack.format('A', 'v1')}))
                      (ornament.eta B ({pack.format('B', 'v2')})))
                   (Packed.zip_with_is_zip A B
                      ({pack.format('A', 'v1')})
                      ({pack.format('B', 'v2')})))
                (zip_index A B n v1 v2)
            """,
        ),
    )
    env.define(
        "zipv_with",
        parse(
            env,
            f"""
            fun (A B : Type1) (n : nat) (v1 : vector A n) (v2 : vector B n) =>
              unpack (prod A B) n
                (Packed.zip_with A B (prod A B) (pair A B)
                   (ornament.eta A ({pack.format('A', 'v1')}))
                   (ornament.eta B ({pack.format('B', 'v2')})))
                (zipv_with_index A B n v1 v2)
            """,
        ),
    )

    # The final theorem of Section 6.2.2, discharged by the coherence
    # principle (our smartelim custom eliminator).
    final_stmt = parse(
        env,
        """
        forall (A B : Type1) (n : nat)
               (v1 : vector A n) (v2 : vector B n),
          eq (vector (prod A B) n)
             (zipv_with A B n v1 v2)
             (zipv A B n v1 v2)
        """,
    )
    from ..tactics.engine import prove
    from ..tactics.tactics import exact, intros

    zip_with_is_zip_vect = prove(
        env,
        final_stmt,
        intros("A", "B", "n", "v1", "v2"),
        exact(
            f"""
            unpack_coherence (prod A B)
              (Packed.zip_with A B (prod A B) (pair A B)
                 (ornament.eta A ({pack.format('A', 'v1')}))
                 (ornament.eta B ({pack.format('B', 'v2')})))
              (Packed.zip A B
                 (ornament.eta A ({pack.format('A', 'v1')}))
                 (ornament.eta B ({pack.format('B', 'v2')})))
              (Packed.zip_with_is_zip A B
                 ({pack.format('A', 'v1')})
                 ({pack.format('B', 'v2')}))
              n
              (zip_index A B n v1 v2)
            """
        ),
    )
    env.define(
        "zip_with_is_zip_vect", zip_with_is_zip_vect, type=final_stmt
    )

    return OrnamentScenario(
        env=env,
        config=config,
        packed_results=packed,
        zip_vect=env.constant("zipv").body,
        zip_with_vect=env.constant("zipv_with").body,
        zip_with_is_zip_vect=zip_with_is_zip_vect,
    )
