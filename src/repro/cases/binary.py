"""The unary-to-binary case study (Section 6.3, ``nonorn.v``).

Uses a *manual* configuration (Figure 6, right) for ``nat ~= N``:

* ``DepConstr``: ``N0`` and ``N.succ`` — standard library functions that
  behave like the ``nat`` constructors;
* ``DepElim``: ``N.peano_rect``;
* ``Iota``: the propositional reduction rule ``N.peano_rect_succ``,
  packaged as the rewrite lemma ``iota_N_1`` — the key to supporting a
  change in *inductive structure* (the need for it goes back to Magaud
  and Bertot [2000], as the paper notes).

The workflow reproduced here:

1. ``Repair nat N in add as slow_add`` — fully automatic;
2. port ``add_n_Sm`` — "not quite as push-button": the paper required a
   manual expansion step turning implicit definitional casts into
   explicit applications of ``Iota`` over ``nat``; ``add_n_Sm_marked`` is
   that expanded proof, and the transformation maps its ``iota_nat_*``
   marks to ``iota_N_*``;
3. prove ``add_fast_add`` (slow addition agrees with the stdlib's fast
   binary addition) with ``induction .. using N.peano_rect``; and
4. derive ``add_n_Sm`` for *fast* binary addition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.caching import TransformCache
from ..core.config import Configuration, MarkedIotaSide, TermSide
from ..core.repair import RepairResult, RepairSession
from ..kernel.env import Environment
from ..kernel.term import Const, Constr, Ind, Term
from ..stdlib import make_env
from ..syntax.parser import parse


@dataclass
class BinaryScenario:
    """Artifacts of the Section 6.3 workflow."""

    env: Environment
    config: Configuration
    slow_add: RepairResult
    slow_add_n_Sm: RepairResult
    add_fast_add: Term
    fast_add_n_Sm: Term


def declare_iota_constants(env: Environment) -> None:
    """The explicit iota rules for both sides of ``nat ~= N``.

    Over ``nat`` iota is definitional, so both rules are identities with
    the right type.  Over ``N`` the successor rule is the rewrite along
    ``N.peano_rect_succ`` shown in Section 6.3.1.
    """
    from ..tactics.engine import prove
    from ..tactics.tactics import exact, intros, rewrite

    if env.has_constant("iota_nat_1"):
        return

    env.define(
        "iota_nat_0",
        parse(
            env,
            """
            fun (P : nat -> Type1) (p0 : P O)
                (pS : forall (n : nat), P n -> P (S n))
                (Q : P O -> Type1)
                (H : Q p0) => H
            """,
        ),
    )
    env.define(
        "iota_nat_1",
        parse(
            env,
            """
            fun (P : nat -> Type1) (p0 : P O)
                (pS : forall (n : nat), P n -> P (S n))
                (n : nat)
                (Q : P (S n) -> Type1)
                (H : Q (pS n (nat_rect P p0 pS n))) => H
            """,
        ),
    )
    env.define(
        "iota_N_0",
        parse(
            env,
            """
            fun (P : N -> Type1) (p0 : P N0)
                (pS : forall (n : N), P n -> P (N.succ n))
                (Q : P N0 -> Type1)
                (H : Q p0) => H
            """,
        ),
    )
    iota_n_1_stmt = parse(
        env,
        """
        forall (P : N -> Type1) (p0 : P N0)
               (pS : forall (n : N), P n -> P (N.succ n))
               (n : N)
               (Q : P (N.succ n) -> Type1),
          Q (pS n (N.peano_rect P p0 pS n)) ->
          Q (N.peano_rect P p0 pS (N.succ n))
        """,
    )
    env.define(
        "iota_N_1",
        prove(
            env,
            iota_n_1_stmt,
            intros("P", "p0", "pS", "n", "Q", "H"),
            rewrite("N.peano_rect_succ P p0 pS n"),
            exact("H"),
        ),
        type=iota_n_1_stmt,
    )


def binary_configuration(env: Environment) -> Configuration:
    """The manual ``nat ~= N`` configuration of Section 6.3.1."""
    declare_iota_constants(env)
    side_a = MarkedIotaSide(
        env, "nat", iota_names=("iota_nat_0", "iota_nat_1")
    )
    side_b = TermSide(
        n_params=0,
        type_fn=Ind("N"),
        dep_constr=(Constr("N", 0), Const("N.succ")),
        dep_elim=Const("N.peano_rect"),
        constr_arities=(0, 1),
        iota=(Const("iota_N_0"), Const("iota_N_1")),
    )
    return Configuration(a=side_a, b=side_b)


def declare_marked_add_n_Sm(env: Environment) -> None:
    """The manually iota-expanded ``add_n_Sm`` proof over ``nat``.

    This is the "manual expansion step, turning implicit casts in the
    inductive case into explicit applications of Iota over A" that
    Section 6.3.2 describes — formulaic but tricky.  Over ``nat`` the
    marks are identities, so the statement is unchanged; over ``N`` they
    become rewrites along ``N.peano_rect_succ``.
    """
    if env.has_constant("add_n_Sm_marked"):
        return
    stmt = parse(
        env, "forall (n m : nat), eq nat (S (add n m)) (add n (S m))"
    )
    proof = parse(
        env,
        """
        fun (n m : nat) =>
          Elim[nat](n;
              fun (k : nat) => eq nat (S (add k m)) (add k (S m)))
            { eq_refl nat (S m),
              fun (p : nat)
                  (IHp : eq nat (S (add p m)) (add p (S m))) =>
                iota_nat_1 (fun (k : nat) => nat) m
                  (fun (k IH : nat) => S IH) p
                  (fun (x : nat) =>
                     eq nat (S x) (add (S p) (S m)))
                  (iota_nat_1 (fun (k : nat) => nat) (S m)
                     (fun (k IH : nat) => S IH) p
                     (fun (x : nat) =>
                        eq nat (S (S (add p m))) x)
                     (f_equal nat nat
                        (fun (k : nat) => S k)
                        (S (add p m)) (add p (S m)) IHp)) }
        """,
    )
    env.define("add_n_Sm_marked", proof, type=stmt)


def run_scenario(cache: Optional[TransformCache] = None) -> BinaryScenario:
    """Run the full Section 6.3 workflow; return all artifacts."""
    from ..tactics.engine import prove
    from ..tactics.tactics import (
        elim_using,
        exact,
        intro,
        intros,
        reflexivity,
        rewrite,
    )

    env = make_env(lists=False, vectors=False, binary=True)
    config = binary_configuration(env)
    declare_marked_add_n_Sm(env)

    session = RepairSession(
        env,
        config,
        old_globals=["nat"],
        rename=lambda n: {"add": "slow_add"}.get(n, f"N.{n}"),
        cache=cache,
    )
    # Repair nat N in add as slow_add.
    slow_add = session.repair_constant("add", new_name="slow_add")
    # Port the iota-expanded proof.
    slow_add_n_sm = session.repair_constant(
        "add_n_Sm_marked", new_name="slow_add_n_Sm"
    )

    # slow_add agrees with the standard library's fast binary addition.
    fast_stmt = parse(
        env,
        "forall (n m : N), eq N (slow_add n m) (N.add n m)",
    )
    add_fast_add = prove(
        env,
        fast_stmt,
        intro("n"),
        elim_using("N.peano_rect", "n"),
        # base: slow_add N0 m = N.add N0 m
        intro("m"),
        reflexivity(),
        # step
        intros("n0", "IHn", "m"),
        rewrite(
            "N.peano_rect_succ (fun (k : N) => N) m "
            "(fun (k x : N) => N.succ x) n0"
        ),
        rewrite("IHn m"),
        rewrite("N.add_succ_l n0 m"),
        reflexivity(),
    )
    env.define("add_fast_add", add_fast_add, type=fast_stmt)

    # The theorem over fast binary addition (Section 6.3.2).
    fast_n_sm_stmt = parse(
        env,
        "forall (n m : N), "
        "eq N (N.succ (N.add n m)) (N.add n (N.succ m))",
    )
    fast_add_n_sm = prove(
        env,
        fast_n_sm_stmt,
        intros("n", "m"),
        rewrite("add_fast_add n m", rev=True),
        rewrite("add_fast_add n (N.succ m)", rev=True),
        exact("slow_add_n_Sm n m"),
    )
    env.define("N.add_n_Sm", fast_add_n_sm, type=fast_n_sm_stmt)

    return BinaryScenario(
        env=env,
        config=config,
        slow_add=slow_add,
        slow_add_n_Sm=slow_add_n_sm,
        add_fast_add=add_fast_add,
        fast_add_n_Sm=fast_add_n_sm,
    )
