"""Factoring constructors out to ``bool`` (Section 3.1.1, Figure 4).

``I`` has constructors ``A`` and ``B``; ``J`` has a single constructor
``makeJ : bool -> J``.  Mapping ``A`` to ``true`` and ``B`` to ``false``
induces an equivalence ``I ~= J`` along which the boolean algebra
(``neg``/``and``/``or``) and De Morgan's laws are repaired — the
``constr_refactor.v`` example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.caching import TransformCache
from ..core.config import (
    AlignedSide,
    Configuration,
    Equivalence,
    TermSide,
)
from ..core.repair import RepairResult, RepairSession
from ..kernel.env import Environment
from ..kernel.inductive import ConstructorDecl, InductiveDecl
from ..kernel.term import Ind, SET
from ..stdlib import make_env
from ..syntax.parser import parse


@dataclass
class RefactorScenario:
    env: Environment
    config: Configuration
    results: List[RepairResult]


def setup_environment() -> Environment:
    """Declare I, J, and the I-algebra with its De Morgan proofs."""
    env = make_env(lists=False, vectors=False)
    env.declare_inductive(
        InductiveDecl(
            name="I",
            params=(),
            indices=(),
            sort=SET,
            constructors=(
                ConstructorDecl("A", args=()),
                ConstructorDecl("B", args=()),
            ),
        )
    )
    env.declare_inductive(
        InductiveDecl(
            name="J",
            params=(),
            indices=(),
            sort=SET,
            constructors=(
                ConstructorDecl("makeJ", args=(("b", Ind("bool")),)),
            ),
        )
    )
    env.define(
        "neg",
        parse(env, "fun (i : I) => Elim[I](i; fun (_ : I) => I){ B, A }"),
    )
    # and (i1 i2 : I) := I_rec _ i2 B i1 (the paper's definition).
    env.define(
        "Ialg.and",
        parse(
            env,
            "fun (i1 i2 : I) => Elim[I](i1; fun (_ : I) => I){ i2, B }",
        ),
    )
    env.define(
        "Ialg.or",
        parse(
            env,
            "fun (i1 i2 : I) => Elim[I](i1; fun (_ : I) => I){ A, i2 }",
        ),
    )
    _prove_demorgan(env)
    return env


def _prove_demorgan(env: Environment) -> None:
    from ..tactics.engine import prove
    from ..tactics.tactics import induction, intros, reflexivity

    for name, statement in [
        (
            "demorgan_1",
            "forall (i1 i2 : I), eq I (neg (Ialg.and i1 i2)) "
            "(Ialg.or (neg i1) (neg i2))",
        ),
        (
            "demorgan_2",
            "forall (i1 i2 : I), eq I (neg (Ialg.or i1 i2)) "
            "(Ialg.and (neg i1) (neg i2))",
        ),
    ]:
        stmt = parse(env, statement)
        env.define(
            name,
            prove(
                env,
                stmt,
                intros("i1", "i2"),
                induction("i1"),
                reflexivity(),
                reflexivity(),
            ),
            type=stmt,
        )


def refactor_configuration(env: Environment) -> Configuration:
    """The manual configuration mapping A to true and B to false."""
    dep_elim = parse(
        env,
        """
        fun (P : J -> Type2) (fA : P (makeJ true)) (fB : P (makeJ false))
            (j : J) =>
          Elim[J](j; fun (j0 : J) => P j0)
            { fun (b : bool) =>
                Elim[bool](b; fun (b0 : bool) => P (makeJ b0))
                  { fA, fB } }
        """,
    )
    side_b = TermSide(
        n_params=0,
        type_fn=Ind("J"),
        dep_constr=(
            parse(env, "makeJ true"),
            parse(env, "makeJ false"),
        ),
        dep_elim=dep_elim,
        constr_arities=(0, 0),
    )
    config = Configuration(a=AlignedSide(env, "I"), b=side_b)
    config.equivalence = _prove_equivalence(env)
    return config


def _prove_equivalence(env: Environment) -> Equivalence:
    from ..kernel.typecheck import typecheck_closed
    from ..tactics.engine import prove
    from ..tactics.tactics import induction, intro, reflexivity

    f = parse(
        env,
        "fun (i : I) => Elim[I](i; fun (_ : I) => J)"
        "{ makeJ true, makeJ false }",
    )
    g = parse(
        env,
        """
        fun (j : J) =>
          Elim[J](j; fun (_ : J) => I)
            { fun (b : bool) =>
                Elim[bool](b; fun (_ : bool) => I){ A, B } }
        """,
    )
    typecheck_closed(env, f)
    typecheck_closed(env, g)
    if not env.has_constant("IJ.f"):
        env.define("IJ.f", f)
        env.define("IJ.g", g)

    section_stmt = parse(
        env, "forall (i : I), eq I (IJ.g (IJ.f i)) i"
    )
    section = prove(
        env,
        section_stmt,
        intro("i"),
        induction("i"),
        reflexivity(),
        reflexivity(),
    )
    retraction_stmt = parse(
        env, "forall (j : J), eq J (IJ.f (IJ.g j)) j"
    )
    retraction = prove(
        env,
        retraction_stmt,
        intro("j"),
        induction("j", names=[["b"]]),
        induction("b"),
        reflexivity(),
        reflexivity(),
    )
    return Equivalence(f=f, g=g, section=section, retraction=retraction)


def run_scenario(cache: Optional[TransformCache] = None) -> RefactorScenario:
    """Repair the I-algebra and the De Morgan proofs onto J."""
    env = setup_environment()
    config = refactor_configuration(env)
    session = RepairSession(
        env,
        config,
        old_globals=["I"],
        rename=lambda n: f"J.{n.split('.')[-1]}",
        cache=cache,
    )
    results = session.repair_module(
        ["neg", "Ialg.and", "Ialg.or", "demorgan_1", "demorgan_2"]
    )
    return RefactorScenario(env=env, config=config, results=results)
