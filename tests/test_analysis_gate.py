"""The ``REPRO_ANALYZE`` pipeline gate.

Satellite of the static-analysis layer: with the gate on, a malformed
configuration fails *at the Figure 10 rule that produced the bad term*
(an :class:`AnalysisError` naming the rule), instead of surfacing as a
deep kernel ``TypeError_`` long after the culprit rule fired.  With the
gate off, repair output is byte-identical to an analysis-free build.
"""

import pytest

from repro.analysis import AnalysisError, set_analysis
from repro.core.config import AlignedSide, Configuration, TermSide
from repro.core.repair import RepairSession
from repro.core.search.swap import swap_configuration
from repro.core.transform import Transformer
from repro.kernel import (
    App,
    Const,
    Constr,
    Ind,
    Lam,
    Rel,
    Sort,
    TermError,
    pretty,
    typecheck_closed,
)
from repro.stdlib import declare_list_type, make_env
from repro.syntax.parser import parse


@pytest.fixture
def analyze():
    previous = set_analysis(True)
    yield
    set_analysis(previous)


def fresh_env():
    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    return env


def broken_configuration(env):
    """A configuration whose dep_constr[0] builds an unbound ``Rel``."""
    b = TermSide(
        n_params=1,
        type_fn=Lam("T", Sort(0), App(Ind("New.list"), Rel(0))),
        dep_constr=(
            Lam("T", Sort(0), Rel(5)),  # malformed on purpose
            Lam("T", Sort(0), App(Ind("New.list"), Rel(0))),
        ),
        dep_elim=Lam("T", Sort(0), Sort(0)),
        constr_arities=(0, 2),
    )
    return Configuration(a=AlignedSide(env, "list"), b=b)


class TestRuleGate:
    def test_broken_rule_output_names_the_rule(self, analyze):
        env = fresh_env()
        config = broken_configuration(env)
        nil = Constr("list", 0).app(Ind("nat"))
        with pytest.raises(AnalysisError) as excinfo:
            Transformer(env, config)(nil)
        assert excinfo.value.rule == "Dep-Constr"
        assert "RA001" in excinfo.value.codes

    def test_without_the_gate_failure_is_a_deep_kernel_error(self):
        # Analysis off (the default): the same defect slips through the
        # transformation and only explodes later, inside the kernel,
        # with no mention of the rule that produced it.
        env = fresh_env()
        config = broken_configuration(env)
        nil = Constr("list", 0).app(Ind("nat"))
        garbage = Transformer(env, config)(nil)  # silently succeeds
        with pytest.raises(TermError) as excinfo:
            typecheck_closed(env, garbage)
        assert not isinstance(excinfo.value, AnalysisError)

    def test_gate_is_transparent_on_well_formed_repair(self, analyze):
        def one_element_rev(env):
            decl = env.inductive("list")
            nil = Constr("list", decl.constructor_index("nil"))
            cons = Constr("list", decl.constructor_index("cons"))
            value = cons.app(
                Ind("nat"), Constr("nat", 0), nil.app(Ind("nat"))
            )
            return Const("rev").app(Ind("nat"), value)

        env = fresh_env()
        config = swap_configuration(env, "list", "New.list")
        transformed = Transformer(env, config)(one_element_rev(env))
        baseline_env = fresh_env()
        baseline_config = swap_configuration(
            baseline_env, "list", "New.list"
        )
        previous = set_analysis(False)
        try:
            baseline = Transformer(baseline_env, baseline_config)(
                one_element_rev(baseline_env)
            )
        finally:
            set_analysis(previous)
        assert pretty(transformed) == pretty(baseline)


class TestRepairGate:
    def test_transitive_residual_is_caught(self, analyze):
        # `hidden_old_ref` does not *name* list in the repaired term, so
        # the session's syntactic mentions check cannot see it; only the
        # delta-unfolding residual pass does.
        env = fresh_env()
        env.assume(
            "hidden_old_ref",
            parse(env, "forall (T : Set), list T -> list T"),
        )
        config = swap_configuration(env, "list", "New.list")
        session = RepairSession(env, config, old_globals=["list"])
        with pytest.raises(AnalysisError) as excinfo:
            session.repair_term(
                Const("hidden_old_ref"), expected_type=None
            )
        assert "RA102" in excinfo.value.codes

    def test_same_call_passes_with_analysis_off(self):
        env = fresh_env()
        env.assume(
            "hidden_old_ref",
            parse(env, "forall (T : Set), list T -> list T"),
        )
        config = swap_configuration(env, "list", "New.list")
        session = RepairSession(env, config, old_globals=["list"])
        result = session.repair_term(Const("hidden_old_ref"))
        assert result == Const("hidden_old_ref")

    def test_repair_module_is_byte_identical_with_gate_on(self, analyze):
        env = fresh_env()
        config = swap_configuration(env, "list", "New.list")
        session = RepairSession(
            env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
        )
        results = session.repair_module(["app", "rev"])
        baseline_env = fresh_env()
        baseline_config = swap_configuration(
            baseline_env, "list", "New.list"
        )
        previous = set_analysis(False)
        try:
            baseline_session = RepairSession(
                baseline_env,
                baseline_config,
                old_globals=["list"],
                rename=lambda n: f"New.{n}",
            )
            baseline = baseline_session.repair_module(["app", "rev"])
        finally:
            set_analysis(previous)
        assert [pretty(r.term) for r in results] == [
            pretty(r.term) for r in baseline
        ]
        assert [pretty(r.type) for r in results] == [
            pretty(r.type) for r in baseline
        ]
