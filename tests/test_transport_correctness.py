"""Observational correctness of transport (the Figure 12 criteria, run).

The paper's correctness statement — transformed terms are equal to their
originals *up to transport along the equivalence* — is metatheoretical
(Section 4.2.2).  Here we check it observationally with property tests:
for random closed inputs, transporting the input and then running the
repaired function agrees with running the original function and then
transporting the output.  This commuting square is exactly
``dep_constr_ok``/``dep_elim_ok`` at ground type.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import Severity, find_residuals
from repro.core.repair import RepairSession
from repro.core.search.ornaments import ornament_configuration
from repro.core.search.swap import swap_configuration
from repro.core.transform import Transformer
from repro.kernel import Const, Ind, mk_app, nf
from repro.stdlib import declare_list_type, make_env
from repro.stdlib.natlib import nat_of_int
from repro.syntax.parser import parse

small_nat = st.integers(min_value=0, max_value=9)
small_list = st.lists(small_nat, max_size=5)


@pytest.fixture(scope="module")
def swap_setup():
    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    config = swap_configuration(env, "list", "New.list")
    session = RepairSession(
        env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
    )
    session.repair_module(["app", "rev", "length", "map"])
    transformer = Transformer(env, config)
    return env, config, transformer


def mk_list(env, values, module="list"):
    from repro.kernel import Constr

    decl = env.inductive(module)
    nil_index = decl.constructor_index("nil")
    cons_index = decl.constructor_index("cons")
    term = Constr(module, nil_index).app(Ind("nat"))
    for v in reversed(values):
        term = Constr(module, cons_index).app(Ind("nat"), nat_of_int(v), term)
    return term


class TestSwapTransport:
    @given(small_list)
    @settings(max_examples=20, deadline=None)
    def test_rev_commutes(self, swap_setup, xs):
        env, _config, transformer = swap_setup
        old = nf(env, Const("rev").app(Ind("nat"), mk_list(env, xs)))
        transported_then_run = nf(
            env,
            Const("New.rev").app(Ind("nat"), transformer(mk_list(env, xs))),
        )
        run_then_transported = nf(env, transformer(old))
        assert transported_then_run == run_then_transported

    @given(small_list, small_list)
    @settings(max_examples=20, deadline=None)
    def test_app_commutes(self, swap_setup, xs, ys):
        env, _config, transformer = swap_setup
        old = nf(
            env,
            Const("app").app(Ind("nat"), mk_list(env, xs), mk_list(env, ys)),
        )
        new = nf(
            env,
            Const("New.app").app(
                Ind("nat"),
                transformer(mk_list(env, xs)),
                transformer(mk_list(env, ys)),
            ),
        )
        assert new == nf(env, transformer(old))

    @given(small_list)
    @settings(max_examples=20, deadline=None)
    def test_length_is_invariant(self, swap_setup, xs):
        # length lands in nat, which the equivalence does not touch: the
        # transported function must return the *same* numeral.
        env, _config, transformer = swap_setup
        old = nf(env, Const("length").app(Ind("nat"), mk_list(env, xs)))
        new = nf(
            env,
            Const("New.length").app(Ind("nat"), transformer(mk_list(env, xs))),
        )
        assert old == new

    @given(small_list)
    @settings(max_examples=20, deadline=None)
    def test_equivalence_roundtrip_on_values(self, swap_setup, xs):
        env, config, transformer = swap_setup
        value = mk_list(env, xs)
        there = nf(env, mk_app(config.equivalence.f, [Ind("nat"), value]))
        back = nf(env, mk_app(config.equivalence.g, [Ind("nat"), there]))
        assert back == nf(env, value)

    @given(small_list)
    @settings(max_examples=20, deadline=None)
    def test_transform_agrees_with_equivalence_function(self, swap_setup, xs):
        # On closed values, the syntactic transformation and the
        # semantic function f of the equivalence coincide.
        env, config, transformer = swap_setup
        value = mk_list(env, xs)
        via_transform = nf(env, transformer(value))
        via_f = nf(env, mk_app(config.equivalence.f, [Ind("nat"), value]))
        assert via_transform == via_f


@pytest.fixture(scope="module")
def ornament_setup():
    env = make_env(lists=True, vectors=True)
    config = ornament_configuration(env)
    transformer = Transformer(env, config)
    return env, config, transformer


class TestOrnamentTransport:
    @given(small_list)
    @settings(max_examples=15, deadline=None)
    def test_packed_value_has_correct_index(self, ornament_setup, xs):
        # Transporting a list yields a packed vector whose index is the
        # list's length — the algebraic-ornament invariant.
        env, _config, transformer = ornament_setup
        packed = nf(env, transformer(mk_list(env, xs)))
        index = nf(
            env,
            Const("projT1").app(
                Ind("nat"),
                parse(env, "fun (n : nat) => vector nat n"),
                packed,
            ),
        )
        assert index == nat_of_int(len(xs))

    @given(small_list)
    @settings(max_examples=15, deadline=None)
    def test_forget_after_transform_is_identity(self, ornament_setup, xs):
        env, config, transformer = ornament_setup
        value = mk_list(env, xs)
        packed = nf(env, transformer(value))
        back = nf(
            env, Const("ornament.forget").app(Ind("nat"), packed)
        )
        assert back == nf(env, value)


def assert_no_residuals(env, results, old_globals, allow=frozenset()):
    """Every repaired term and type passes the residual detector."""
    for result in results:
        for label, term in (("term", result.term), ("type", result.type)):
            findings = [
                d
                for d in find_residuals(
                    env,
                    term,
                    old_globals,
                    allow=allow,
                    subject=f"{result.new_name}:{label}",
                )
                if d.severity is Severity.ERROR
            ]
            assert findings == [], [d.render() for d in findings]


class TestNoResidualReferences:
    """The Section 4 guarantee, checked by the residual detector.

    Every case study's repaired output must contain no reference — direct
    or through a δ-unfolding — to the type it was repaired away from.
    """

    def test_quickstart(self, quickstart_scenario):
        scenario = quickstart_scenario
        results = [scenario.result] + list(scenario.module_results)
        assert_no_residuals(scenario.env, results, ("list",))

    def test_replica(self):
        # The replica fixture does not expose its shared environment, so
        # drive the variants through the CLI adapter, which does.
        from repro.analysis.cli import _replica_artifacts

        artifacts = _replica_artifacts()
        assert artifacts.residual_targets
        for target in artifacts.residual_targets:
            findings = [
                d
                for d in find_residuals(
                    artifacts.env,
                    target.term,
                    target.old_globals,
                    allow=target.allow,
                    subject=target.label,
                )
                if d.severity is Severity.ERROR
            ]
            assert findings == [], [d.render() for d in findings]

    def test_binary(self, binary_scenario):
        scenario = binary_scenario
        assert_no_residuals(
            scenario.env,
            [scenario.slow_add, scenario.slow_add_n_Sm],
            ("nat",),
            allow=frozenset({"iota_nat_0", "iota_nat_1"}),
        )

    def test_ornaments(self, ornament_scenario):
        scenario = ornament_scenario
        assert_no_residuals(
            scenario.env,
            scenario.packed_results,
            ("list",),
            allow=frozenset(
                {
                    "ornament.eta",
                    "ornament.dep_constr_0",
                    "ornament.dep_constr_1",
                    "ornament.promote",
                    "ornament.forget",
                    "ornament.forget_vec",
                }
            ),
        )

    def test_galois(self, galois_scenario):
        scenario = galois_scenario
        assert_no_residuals(
            scenario.env, [scenario.cork_result], ("Galois.Connection'",)
        )
        assert_no_residuals(
            scenario.env, [scenario.cork_lemma_tuple], ("Record.Handshake",)
        )

    def test_constr_refactor(self, refactor_scenario):
        scenario = refactor_scenario
        assert_no_residuals(scenario.env, scenario.results, ("I",))
