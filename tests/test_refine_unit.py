"""The refine_unit equivalence (Section 4.3) and termination (Section 4.4).

``A ~= Σ (u : unit). A`` is the paper's example of an equivalence that
exists but is rarely useful, and of the nontermination hazard when ``B``
is a refinement of ``A`` (the Equivalence rule matches its own output).
Our transformation terminates on it by construction: rules fire on input
subterms only, and constructed output is never re-examined.

Proof-level transport across this equivalence would need unification
heuristics beyond what any of the search procedures provide — the
incompleteness the paper's Section 4.2.1 concedes — so the tests cover
the function-level fragment.
"""

import pytest

from repro.core.search.refine_unit import refine_unit_configuration
from repro.core.transform import Transformer
from repro.kernel import mentions_global, mk_app, nf, pretty, typecheck_closed
from repro.stdlib import make_env
from repro.syntax.parser import parse


@pytest.fixture(scope="module")
def refined():
    env = make_env(lists=False, vectors=False)
    config = refine_unit_configuration(env, "nat")
    return env, config


class TestTermination:
    def test_transforming_terminates(self, refined):
        # The hazard case: B mentions A.  A naive engine would loop.
        env, config = refined
        transformer = Transformer(env, config)
        out = transformer(env.constant("add").body)
        assert out is not None

    def test_output_well_typed(self, refined):
        env, config = refined
        transformer = Transformer(env, config)
        out = transformer(env.constant("add").body)
        ty = typecheck_closed(env, out)
        rendered = pretty(ty, env=env)
        assert rendered.count("sigT unit") == 3

    def test_refinement_keeps_base_type(self, refined):
        # Unlike ordinary repair, the refinement *reuses* A: the base
        # type legitimately remains inside the refined terms.
        env, config = refined
        transformer = Transformer(env, config)
        out = transformer(env.constant("add").body)
        assert mentions_global(out, "nat")


class TestBehaviour:
    def test_refined_add_computes(self, refined):
        env, config = refined
        transformer = Transformer(env, config)
        refined_add = transformer(env.constant("add").body)

        def packed(k):
            return parse(
                env, f"existT unit (fun (_ : unit) => nat) tt {k}"
            )

        out = nf(env, mk_app(refined_add, [packed(2), packed(3)]))
        assert out == nf(env, packed(5))

    def test_numerals_pack(self, refined):
        env, config = refined
        transformer = Transformer(env, config)
        out = transformer(parse(env, "3"))
        rendered = pretty(nf(env, out), env=env)
        assert "existT" in rendered
        assert "tt" in rendered
