"""The bench regression gate: transform-phase floor + required phases.

``check_regression.compare`` applies a tighter absolute wall-time floor
to ``*/transform`` phases than to everything else: the transformer hot
path is a few milliseconds per case by design, so the general
``--min-seconds`` noise floor (sized for whole-case walls) would hide
any realistic regression in it.

``--require-phase`` pins a phase into the *current* report regardless
of the baseline — the guard that keeps a new phase family (like
``cold_start/snapshot``) from silently vanishing before its baseline
exists.
"""

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "benchmarks")
)

from check_regression import (  # noqa: E402
    _is_transform_phase,
    compare,
    main,
    missing_required,
)


def _report(phases):
    return {"phases": phases}


def _entry(wall, rates=None):
    entry = {"wall_time_s": wall}
    if rates is not None:
        entry["cache_hit_rates"] = rates
    return entry


def test_transform_phase_detection():
    assert _is_transform_phase("replica/transform")
    assert _is_transform_phase("transform_fast_off/replica/transform")
    assert _is_transform_phase("transform")  # no case prefix: still it
    assert not _is_transform_phase("replica/typecheck")
    assert not _is_transform_phase("replica/transform_cache")


def test_transform_slowdown_trips_the_tighter_floor():
    baseline = _report({"replica/transform": _entry(0.006)})
    current = _report({"replica/transform": _entry(0.016)})
    regressions = compare(
        current,
        baseline,
        tolerance=0.25,
        hit_rate_drop=0.10,
        min_seconds=0.05,
        transform_min_seconds=0.005,
    )
    assert len(regressions) == 1
    assert "replica/transform" in regressions[0]


def test_same_slowdown_on_other_phases_stays_under_general_floor():
    # Identical absolute slowdown on a non-transform phase: swallowed by
    # the general --min-seconds floor, exactly as before.
    baseline = _report({"replica/typecheck": _entry(0.006)})
    current = _report({"replica/typecheck": _entry(0.016)})
    regressions = compare(
        current,
        baseline,
        tolerance=0.25,
        hit_rate_drop=0.10,
        min_seconds=0.05,
        transform_min_seconds=0.005,
    )
    assert regressions == []


def test_transform_within_tolerance_passes():
    baseline = _report({"replica/transform": _entry(0.0068)})
    current = _report({"replica/transform": _entry(0.008)})
    regressions = compare(
        current,
        baseline,
        tolerance=0.25,
        hit_rate_drop=0.10,
        min_seconds=0.05,
        transform_min_seconds=0.005,
    )
    assert regressions == []


# -- --require-phase ----------------------------------------------------------


def test_missing_required_reports_absent_phases_in_order():
    current = _report({"cold_start/scratch": _entry(1.0)})
    assert missing_required(current, []) == []
    assert missing_required(current, ["cold_start/scratch"]) == []
    assert missing_required(
        current, ["cold_start/snapshot", "cold_start/scratch", "warm/jobs1"]
    ) == ["cold_start/snapshot", "warm/jobs1"]


def test_missing_required_glob_needs_at_least_one_match():
    current = _report(
        {"impact/plan": _entry(0.1), "impact/pruned": _entry(0.2)}
    )
    assert missing_required(current, ["impact/*"]) == []
    assert missing_required(current, ["cold_start/*"]) == ["cold_start/*"]
    # A glob is not a substring test: it must match the full phase name.
    assert missing_required(current, ["impact"]) == ["impact"]
    assert missing_required(current, ["plan*"]) == ["plan*"]


def test_require_phase_glob_through_main(tmp_path, capsys):
    current = _write_report(
        tmp_path / "current.json",
        {"cold/jobs1": _entry(1.0), "impact/pruned": _entry(0.2)},
    )
    baseline = _write_report(
        tmp_path / "baseline.json", {"cold/jobs1": _entry(1.0)}
    )
    argv = ["check_regression.py", current, baseline, "--require-phase", "impact/*"]
    assert main(argv) == 0
    capsys.readouterr()
    stripped = _write_report(
        tmp_path / "stripped.json", {"cold/jobs1": _entry(1.0)}
    )
    argv[1] = stripped
    assert main(argv) == 1
    err = capsys.readouterr().err
    assert "impact/*" in err and "required phase" in err


def _write_report(path, phases):
    payload = {
        "schema_version": 1,
        "benchmark": "service",
        "timestamp": "2026-08-09T00:00:00+00:00",
        "git_sha": "test",
        "phases": phases,
    }
    path.write_text(json.dumps(payload))
    return str(path)


def test_require_phase_fails_even_when_baseline_lacks_it(tmp_path, capsys):
    current = _write_report(
        tmp_path / "current.json", {"cold/jobs1": _entry(1.0)}
    )
    baseline = _write_report(
        tmp_path / "baseline.json", {"cold/jobs1": _entry(1.0)}
    )
    argv = [
        "check_regression.py",
        current,
        baseline,
        "--require-phase",
        "cold_start/snapshot",
    ]
    assert main(argv) == 1
    err = capsys.readouterr().err
    assert "cold_start/snapshot" in err and "required phase" in err


def test_require_phase_passes_when_current_carries_it(tmp_path, capsys):
    current = _write_report(
        tmp_path / "current.json",
        {
            "cold/jobs1": _entry(1.0),
            "cold_start/scratch": _entry(0.4),
            "cold_start/snapshot": _entry(0.3),
        },
    )
    baseline = _write_report(
        tmp_path / "baseline.json", {"cold/jobs1": _entry(1.0)}
    )
    argv = [
        "check_regression.py",
        current,
        baseline,
        "--require-phase",
        "cold_start/scratch",
        "--require-phase",
        "cold_start/snapshot",
    ]
    assert main(argv) == 0
    capsys.readouterr()
