"""The bench regression gate's transform-phase floor.

``check_regression.compare`` applies a tighter absolute wall-time floor
to ``*/transform`` phases than to everything else: the transformer hot
path is a few milliseconds per case by design, so the general
``--min-seconds`` noise floor (sized for whole-case walls) would hide
any realistic regression in it.
"""

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "benchmarks")
)

from check_regression import _is_transform_phase, compare  # noqa: E402


def _report(phases):
    return {"phases": phases}


def _entry(wall, rates=None):
    entry = {"wall_time_s": wall}
    if rates is not None:
        entry["cache_hit_rates"] = rates
    return entry


def test_transform_phase_detection():
    assert _is_transform_phase("replica/transform")
    assert _is_transform_phase("transform_fast_off/replica/transform")
    assert _is_transform_phase("transform")  # no case prefix: still it
    assert not _is_transform_phase("replica/typecheck")
    assert not _is_transform_phase("replica/transform_cache")


def test_transform_slowdown_trips_the_tighter_floor():
    baseline = _report({"replica/transform": _entry(0.006)})
    current = _report({"replica/transform": _entry(0.016)})
    regressions = compare(
        current,
        baseline,
        tolerance=0.25,
        hit_rate_drop=0.10,
        min_seconds=0.05,
        transform_min_seconds=0.005,
    )
    assert len(regressions) == 1
    assert "replica/transform" in regressions[0]


def test_same_slowdown_on_other_phases_stays_under_general_floor():
    # Identical absolute slowdown on a non-transform phase: swallowed by
    # the general --min-seconds floor, exactly as before.
    baseline = _report({"replica/typecheck": _entry(0.006)})
    current = _report({"replica/typecheck": _entry(0.016)})
    regressions = compare(
        current,
        baseline,
        tolerance=0.25,
        hit_rate_drop=0.10,
        min_seconds=0.05,
        transform_min_seconds=0.005,
    )
    assert regressions == []


def test_transform_within_tolerance_passes():
    baseline = _report({"replica/transform": _entry(0.0068)})
    current = _report({"replica/transform": _entry(0.008)})
    regressions = compare(
        current,
        baseline,
        tolerance=0.25,
        hit_rate_drop=0.10,
        min_seconds=0.05,
        transform_min_seconds=0.005,
    )
    assert regressions == []
