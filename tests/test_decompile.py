"""The decompiler: Figure 14 rules, second pass, printing, replay."""

import pytest

from repro.decompile.decompiler import (
    decompile_to_script,
    print_script,
)
from repro.decompile.qtac import (
    TExact,
    TIntro,
    TIntros,
    TInduction,
    TLeft,
    TReflexivity,
    TRewrite,
    TRight,
    TSimpl,
    TSplit,
    decompile,
)
from repro.decompile.run import ScriptError, run_script
from repro.syntax.parser import parse
from repro.tactics import prove
from repro.tactics.tactics import (
    induction,
    intro,
    intros,
    reflexivity,
    rewrite,
    right,
    simpl,
    split,
)


def steps(env, proof_term):
    return decompile(env, proof_term).steps


class TestMiniDecompilerRules:
    def test_intro_rule(self, env_basic):
        term = parse(env_basic, "fun (n : nat) => eq_refl nat n")
        out = steps(env_basic, term)
        assert isinstance(out[0], TIntro)
        assert isinstance(out[-1], TReflexivity)

    def test_symmetry_of_eq_sym_application(self, env_basic):
        term = parse(
            env_basic,
            "fun (x y : nat) (H : eq nat x y) => eq_sym nat x y H",
        )
        out = steps(env_basic, term)
        kinds = [type(t).__name__ for t in out]
        assert "TSymmetry" in kinds

    def test_split_rule(self, env_basic):
        term = parse(
            env_basic,
            "conj (eq nat O O) (eq nat 1 1) (eq_refl nat O) (eq_refl nat 1)",
        )
        out = steps(env_basic, term)
        assert isinstance(out[0], TSplit)

    def test_left_right_rules(self, env_basic):
        term = parse(
            env_basic,
            "or_introl (eq nat O O) (eq nat O 1) (eq_refl nat O)",
        )
        out = steps(env_basic, term)
        assert isinstance(out[0], TLeft)
        term = parse(
            env_basic,
            "or_intror (eq nat O 1) (eq nat O O) (eq_refl nat O)",
        )
        out = steps(env_basic, term)
        assert isinstance(out[0], TRight)

    def test_rewrite_rule_from_tactic_proof(self, env_basic):
        stmt = parse(
            env_basic,
            "forall (x y : nat), eq nat x y -> eq nat (S x) (S y)",
        )
        term = prove(env_basic, stmt, intros(), rewrite("H"), reflexivity())
        out = steps(env_basic, term)
        rewrites = [t for t in out if isinstance(t, TRewrite)]
        assert len(rewrites) == 1
        assert not rewrites[0].rev

    def test_induction_rule(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat (add n O) n")
        term = prove(
            env_basic, stmt,
            intro("n"), induction("n", names=[[], ["p", "IHp"]]),
            reflexivity(), simpl(), rewrite("IHp"), reflexivity(),
        )
        out = steps(env_basic, term)
        inductions = [t for t in out if isinstance(t, TInduction)]
        assert len(inductions) == 1
        assert inductions[0].scrut == "n"
        assert len(inductions[0].cases) == 2

    def test_base_rule_falls_back_to_exact(self, env_basic):
        term = parse(env_basic, "fun (n : nat) => n")
        out = steps(env_basic, term)
        assert isinstance(out[-1], TExact)


class TestSecondPass:
    def test_intro_runs_merge(self, env_basic):
        term = parse(
            env_basic,
            "fun (a b c : nat) => eq_refl nat a",
        )
        script = decompile_to_script(env_basic, term)
        assert isinstance(script.steps[0], TIntros)
        assert script.steps[0].names == ("a", "b", "c")

    def test_simpl_dropped_before_reflexivity(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat (add n O) n")
        term = prove(
            env_basic, stmt,
            intro("n"), induction("n", names=[[], ["p", "IHp"]]),
            reflexivity(), simpl(), rewrite("IHp"), reflexivity(),
        )
        script = decompile_to_script(env_basic, term)
        induction_tac = next(
            t for t in script.steps if isinstance(t, TInduction)
        )
        # In the successor case, simpl survives before the rewrite but is
        # not duplicated.
        succ_case = induction_tac.cases[1]
        simpls = [t for t in succ_case.steps if isinstance(t, TSimpl)]
        assert len(simpls) <= 1


class TestPrinting:
    def test_bullets_per_case(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat (add n O) n")
        term = prove(
            env_basic, stmt,
            intro("n"), induction("n", names=[[], ["p", "IHp"]]),
            reflexivity(), simpl(), rewrite("IHp"), reflexivity(),
        )
        text = print_script(decompile_to_script(env_basic, term))
        assert text.startswith("Proof.")
        assert text.rstrip().endswith("Qed.")
        assert "induction n as [|p IHp]." in text
        assert "- " in text

    def test_as_pattern_formatting(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat (add n O) n")
        term = prove(
            env_basic, stmt,
            intro("n"), induction("n", names=[[], ["p", "IHp"]]),
            reflexivity(), simpl(), rewrite("IHp"), reflexivity(),
        )
        script = decompile_to_script(env_basic, term)
        text = print_script(script, name="add_n_O")
        assert "(* add_n_O *)" in text


class TestReplay:
    def test_decompiled_script_replays(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat (add n O) n")
        term = prove(
            env_basic, stmt,
            intro("n"), induction("n", names=[[], ["p", "IHp"]]),
            reflexivity(), simpl(), rewrite("IHp"), reflexivity(),
        )
        script = decompile_to_script(env_basic, term)
        replayed = run_script(env_basic, stmt, script)
        from repro.kernel import Context, check

        check(env_basic, Context.empty(), replayed, stmt)

    def test_replay_fails_on_wrong_statement(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat (add n O) n")
        wrong = parse(env_basic, "forall (n : nat), eq nat (add n 1) n")
        term = prove(
            env_basic, stmt,
            intro("n"), induction("n", names=[[], ["p", "IHp"]]),
            reflexivity(), simpl(), rewrite("IHp"), reflexivity(),
        )
        script = decompile_to_script(env_basic, term)
        with pytest.raises(ScriptError):
            run_script(env_basic, wrong, script)

    def test_split_replay(self, env_basic):
        stmt = parse(env_basic, "and (eq nat O O) (eq nat 1 1)")
        term = prove(env_basic, stmt, split(), reflexivity(), reflexivity())
        script = decompile_to_script(env_basic, term)
        run_script(env_basic, stmt, script)

    def test_disjunction_replay(self, env_basic):
        stmt = parse(env_basic, "or (eq nat O 1) (eq nat O O)")
        term = prove(env_basic, stmt, right(), reflexivity())
        script = decompile_to_script(env_basic, term)
        run_script(env_basic, stmt, script)

