"""Regenerate the committed golden snapshot fixture.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/make_golden.py

The fixture pins the on-disk format: ``test_snapshot.py`` decodes the
committed bytes and asserts a re-encode reproduces them byte-for-byte
on every supported Python version (the CI matrix runs it on
3.11/3.12/3.13).  Regenerate it ONLY on a deliberate format-version
bump — committing new bytes without bumping
:data:`repro.kernel.codec.FORMAT_VERSION` would silently break every
existing snapshot.

The environment inside is deliberately tiny and fully deterministic:
a handful of declarations over ``nat``, built with the reduction cache
disabled so the pack contains no cache entries (their insertion order
is an elaboration detail, not part of the format contract).
"""

import os
import sys

from repro.kernel.codec import FORMAT_VERSION
from repro.kernel.env import Environment
from repro.kernel.inductive import ConstructorDecl, InductiveDecl
from repro.kernel.snapshot import encode_pack
from repro.kernel.term import (
    App,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    SET,
    Sort,
)

#: The fixture's entry key and fingerprint are fixed strings — the
#: golden pack is format evidence, not a bootable service snapshot.
GOLDEN_KEY = "golden:tiny_env"
GOLDEN_FINGERPRINT = "golden-fixture-fingerprint"


def tiny_env() -> Environment:
    env = Environment(reduction_cache=False)
    nat = InductiveDecl(
        name="nat",
        params=(),
        indices=(),
        sort=SET,
        constructors=(
            ConstructorDecl(name="O", args=()),
            ConstructorDecl(name="S", args=(("n", Ind("nat")),)),
        ),
    )
    env.declare_inductive(nat)
    env.define("zero", Constr("nat", 0))
    env.define("one", App(Constr("nat", 1), Constr("nat", 0)))
    env.define(
        "pred",
        Lam(
            "n",
            Ind("nat"),
            Elim(
                "nat",
                Lam("_", Ind("nat"), Ind("nat")),
                (
                    Constr("nat", 0),
                    Lam("m", Ind("nat"), Lam("ih", Ind("nat"), Rel(1))),
                ),
                Rel(0),
            ),
        ),
    )
    env.define(
        "id_nat",
        Lam("n", Ind("nat"), Rel(0)),
        type=Pi("n", Ind("nat"), Ind("nat")),
    )
    env.assume("nat_is_set", Sort(1))
    return env


def golden_bytes() -> bytes:
    return encode_pack({GOLDEN_KEY: (tiny_env(), GOLDEN_FINGERPRINT)})


def main() -> int:
    out = os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        f"golden_snapshot_v{FORMAT_VERSION}.bin",
    )
    data = golden_bytes()
    with open(out, "wb") as handle:
        handle.write(data)
    print(f"wrote {out}: {len(data)} bytes (format v{FORMAT_VERSION})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
