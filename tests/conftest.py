"""Shared fixtures: environments and case-study scenarios.

Scenario fixtures are session scoped — each case study runs once and its
artifacts are inspected by many tests.
"""

from __future__ import annotations

import pytest

from repro.stdlib import make_env


@pytest.fixture(scope="session")
def env_basic():
    """Prelude + nat only."""
    return make_env(lists=False, vectors=False)


@pytest.fixture(scope="session")
def env_lists():
    """Prelude + nat + list (with lemmas) + vector."""
    return make_env(lists=True, vectors=True)


@pytest.fixture(scope="session")
def env_binary():
    """Prelude + nat + positive/N (with peano recursors and lemmas)."""
    return make_env(lists=False, vectors=False, binary=True)


@pytest.fixture(scope="session")
def env_full():
    """Everything, including bitvectors."""
    return make_env(lists=True, vectors=True, binary=True, bitvectors=True)


@pytest.fixture(scope="session")
def quickstart_scenario():
    from repro.cases.quickstart import run_scenario

    return run_scenario()


@pytest.fixture(scope="session")
def replica_variants():
    from repro.cases.replica import run_scenario

    return run_scenario()


@pytest.fixture(scope="session")
def ornament_scenario():
    from repro.cases.ornaments_example import run_scenario

    return run_scenario()


@pytest.fixture(scope="session")
def binary_scenario():
    from repro.cases.binary import run_scenario

    return run_scenario()


@pytest.fixture(scope="session")
def galois_scenario():
    from repro.cases.galois import run_scenario

    return run_scenario()


@pytest.fixture(scope="session")
def refactor_scenario():
    from repro.cases.constr_refactor import run_scenario

    return run_scenario()
