"""The repair server's application layer, driven without sockets."""

import json
import threading
import time

import pytest

from repro.obs import Histogram
from repro.server.app import RepairApp, Request, ServerConfig
from repro.server.queue import JobQueue, QueueRejected
from repro.server.ratelimit import RateLimiter
from repro.server.routes import Route, RouteError, Router
from repro.server.sessions import SessionManager, SessionRejected
from repro.service import BatchOptions, run_batch
from repro.service.job import result_digest
from repro.service.scheduler import inprocess_runner
from repro.service.manifest import jobs_from_manifest

QUICKSTART_SETUP = "repro.service.cases:quickstart_env"


def _quickstart_spec(name="quickstart/rev_app_distr", **kwargs):
    spec = {
        "name": name,
        "setup": QUICKSTART_SETUP,
        "target": "rev_app_distr",
        "config": {"kind": "auto", "a": "list", "b": "New.list"},
        "old": ["list"],
        "rename": {"kind": "prefix", "value": "New."},
    }
    spec.update(kwargs)
    return spec


def _manifest(*specs, **extra):
    body = {"batch": "test", "jobs": list(specs)}
    body.update(extra)
    return body


@pytest.fixture
def app(tmp_path):
    config = ServerConfig(
        workers=1,
        rate=0.0,
        store_dir=str(tmp_path / "store"),
        quiet=True,
        sweep_interval_s=0.0,
    )
    app = RepairApp(config)
    app.start()
    yield app
    app.drain(5.0)


def call(app, method, path, body=None, headers=None):
    raw = json.dumps(body).encode() if body is not None else b""
    return app.handle(
        Request(method, path, dict(headers or {}), raw, "test-client")
    )


# -- Routing ------------------------------------------------------------------


class TestRouter:
    def test_params_are_captured(self):
        router = Router([Route("GET", "/v1/things/{name}", "thing")])
        match = router.resolve("GET", "/v1/things/abc")
        assert match.handler == "thing"
        assert match.params == {"name": "abc"}

    def test_unknown_path_is_404(self):
        router = Router([Route("GET", "/a", "a")])
        with pytest.raises(RouteError) as err:
            router.resolve("GET", "/b")
        assert err.value.status == 404

    def test_wrong_method_is_405_with_allow(self):
        router = Router(
            [Route("GET", "/a", "get_a"), Route("POST", "/a", "post_a")]
        )
        with pytest.raises(RouteError) as err:
            router.resolve("DELETE", "/a")
        assert err.value.status == 405
        assert err.value.allow == ("GET", "POST")


# -- The latency histogram ----------------------------------------------------


class TestHistogram:
    def test_snapshot_buckets_are_cumulative(self):
        hist = Histogram((0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert [b["count"] for b in snap["buckets"]] == [1, 3, 4]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)

    def test_quantiles_interpolate_and_saturate(self):
        hist = Histogram((1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)
        p = hist.percentiles()
        assert 1.0 <= p["p50"] <= 2.0
        assert p["p99"] <= 4.0
        assert Histogram().quantile(0.5) == 0.0


# -- Rate limiting ------------------------------------------------------------


class TestRateLimiter:
    def test_burst_then_429_then_refill(self):
        clock = {"now": 0.0}
        limiter = RateLimiter(
            rate=1.0, burst=2.0, clock=lambda: clock["now"]
        )
        assert limiter.allow("c")[0]
        assert limiter.allow("c")[0]
        allowed, retry_after = limiter.allow("c")
        assert not allowed and retry_after > 0
        assert limiter.rejected == 1
        clock["now"] += retry_after
        assert limiter.allow("c")[0]

    def test_clients_are_independent(self):
        clock = {"now": 0.0}
        limiter = RateLimiter(
            rate=1.0, burst=1.0, clock=lambda: clock["now"]
        )
        assert limiter.allow("a")[0]
        assert not limiter.allow("a")[0]
        assert limiter.allow("b")[0]

    def test_zero_rate_disables(self):
        limiter = RateLimiter(rate=0.0)
        assert all(limiter.allow("c")[0] for _ in range(1000))


# -- The async queue ----------------------------------------------------------


class TestJobQueue:
    def test_submit_runs_and_records_report(self):
        queue = JobQueue(lambda work: {"echo": work}, workers=1)
        queue.start()
        record = queue.submit("b", {"x": 1})
        deadline = time.monotonic() + 10
        while record.state != "done" and time.monotonic() < deadline:
            time.sleep(0.01)
        assert record.state == "done"
        assert record.report == {"echo": {"x": 1}}
        assert queue.get(record.id) is record
        assert queue.get("nope") is None

    def test_failed_execute_lands_in_record_not_thread(self):
        def boom(work):
            raise ValueError("nope")

        queue = JobQueue(boom, workers=1)
        queue.start()
        record = queue.submit("b", {})
        deadline = time.monotonic() + 10
        while record.state != "failed" and time.monotonic() < deadline:
            time.sleep(0.01)
        assert record.state == "failed"
        assert "ValueError" in record.error

    def test_bounded_pending_rejects_with_503(self):
        release = threading.Event()

        def slow(work):
            release.wait(10)
            return {}

        queue = JobQueue(slow, max_pending=1, workers=1)
        queue.start()
        first = queue.submit("b", {})  # picked up by the dispatcher
        deadline = time.monotonic() + 5
        while first.state != "running" and time.monotonic() < deadline:
            time.sleep(0.01)
        queue.submit("b", {})  # fills the single pending slot
        with pytest.raises(QueueRejected) as err:
            queue.submit("b", {})
        assert err.value.status == 503
        assert err.value.code == "queue-full"
        release.set()
        assert queue.drain(10)["unfinished"] == 0

    def test_drain_cancels_queued_jobs(self):
        release = threading.Event()

        def slow(work):
            release.wait(10)
            return {}

        queue = JobQueue(slow, max_pending=8, workers=1)
        queue.start()
        first = queue.submit("b", {})
        deadline = time.monotonic() + 5
        while first.state != "running" and time.monotonic() < deadline:
            time.sleep(0.01)
        queued = queue.submit("b", {})
        release.set()
        stats = queue.drain(10)
        assert stats["cancelled"] == 1
        assert queued.state == "cancelled"
        with pytest.raises(QueueRejected) as err:
            queue.submit("b", {})
        assert err.value.code == "draining"

    def test_finished_records_are_capped(self):
        queue = JobQueue(lambda work: {}, max_pending=64, workers=1)
        queue.start()
        records = [queue.submit("b", {}) for _ in range(10)]
        deadline = time.monotonic() + 10
        while (
            any(r.state != "done" for r in records)
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        queue.max_records = 64  # floor applied at construction
        queue._evict_records()  # no-op below the cap
        assert len(queue.list()) == 10


# -- Sessions -----------------------------------------------------------------


class TestSessionManager:
    def _manager(self, **kwargs):
        kwargs.setdefault("max_sessions", 2)
        kwargs.setdefault("busy_timeout_s", 0.2)
        return SessionManager(**kwargs)

    def test_create_run_close(self):
        manager = self._manager()
        info = manager.create("demo", QUICKSTART_SETUP)
        assert info["name"] == "demo"
        assert info["env_boot"] == "scratch"
        out = manager.run(
            "demo", "Repair list New.list in rev_app_distr."
        )
        assert out["results"][0]["new_names"] == ["rev_app_distr'"]
        assert manager.info("demo")["commands"] == 1
        manager.close("demo")
        assert manager.count == 0

    def test_bad_name_duplicate_and_limit(self):
        manager = self._manager()
        with pytest.raises(SessionRejected) as err:
            manager.create("-bad-", QUICKSTART_SETUP)
        assert err.value.status == 400
        manager.create("a", QUICKSTART_SETUP)
        with pytest.raises(SessionRejected) as err:
            manager.create("a", QUICKSTART_SETUP)
        assert err.value.status == 409
        manager.create("b", QUICKSTART_SETUP)
        with pytest.raises(SessionRejected) as err:
            manager.create("c", QUICKSTART_SETUP)
        assert err.value.status == 503
        assert err.value.code == "session-limit"

    def test_unknown_session_is_404(self):
        manager = self._manager()
        with pytest.raises(SessionRejected) as err:
            manager.run("ghost", "Print nat.")
        assert err.value.status == 404

    def test_command_error_is_422_and_session_survives(self):
        manager = self._manager()
        manager.create("demo", QUICKSTART_SETUP)
        with pytest.raises(SessionRejected) as err:
            manager.run("demo", "Bogus command.")
        assert err.value.status == 422
        out = manager.run(
            "demo", "Repair list New.list in rev_app_distr."
        )
        assert out["results"]

    def test_busy_session_is_409(self):
        manager = self._manager()
        manager.create("demo", QUICKSTART_SETUP)
        managed = manager._live("demo")
        assert managed.lock.acquire()
        try:
            with pytest.raises(SessionRejected) as err:
                manager.run("demo", "Repair list New.list in rev_app_distr.")
            assert err.value.status == 409
            assert err.value.code == "busy"
        finally:
            managed.lock.release()

    def test_idle_ttl_sweep_skips_held_locks(self):
        manager = self._manager(idle_ttl_s=10.0)
        manager.create("old", QUICKSTART_SETUP)
        manager.create("busy", QUICKSTART_SETUP)
        now = time.monotonic() + 60.0
        held = manager._live("busy")
        assert held.lock.acquire()
        try:
            evicted = manager.sweep(now=now)
        finally:
            held.lock.release()
        assert evicted == ["old"]
        assert manager.count == 1
        assert manager.evicted_total == 1


# -- The application ----------------------------------------------------------


class TestRepairApp:
    def test_healthz_and_status(self, app):
        resp = call(app, "GET", "/healthz")
        assert resp.status == 200
        assert resp.payload["status"] == "ok"
        resp = call(app, "GET", "/v1/status")
        assert resp.status == 200
        assert resp.payload["workers"] == 1

    def test_unknown_route_and_method(self, app):
        assert call(app, "GET", "/nope").status == 404
        resp = call(app, "PUT", "/healthz")
        assert resp.status == 405
        assert resp.headers["Allow"] == "GET"

    def test_bad_json_and_bad_manifest(self, app):
        resp = app.handle(
            Request("POST", "/v1/repair", {}, b"{nope", "t")
        )
        assert resp.status == 400
        assert resp.payload["error"]["code"] == "bad-json"
        resp = call(app, "POST", "/v1/repair", {"jobs": []})
        assert resp.status == 400
        assert resp.payload["error"]["code"] == "bad-manifest"

    def test_too_many_jobs_is_413(self, app):
        app.config.max_batch_jobs = 1
        manifest = _manifest(
            _quickstart_spec("a"), _quickstart_spec("b")
        )
        resp = call(app, "POST", "/v1/repair", manifest)
        assert resp.status == 413
        assert resp.payload["error"]["code"] == "too-many-jobs"

    def test_sync_repair_matches_inprocess_digest(self, app):
        manifest = _manifest(_quickstart_spec())
        resp = call(app, "POST", "/v1/repair", manifest)
        assert resp.status == 200
        outcome = resp.payload["outcomes"][0]
        assert outcome["status"] == "ok"

        # The HTTP result must be digest-identical to a direct
        # in-process scheduler run of the same manifest (which the
        # service suite in turn holds digest-identical to the Repair
        # vernacular).
        jobs = jobs_from_manifest(
            {"jobs": [_quickstart_spec()]}, where="test"
        )
        expected = run_batch(
            jobs, BatchOptions(jobs=1), runner=inprocess_runner()
        )
        assert outcome["result_digest"] == result_digest(
            expected.outcomes[0].result
        )

    def test_repeat_repair_hits_store(self, app):
        manifest = _manifest(_quickstart_spec())
        first = call(app, "POST", "/v1/repair", manifest)
        assert first.payload["counts"] == {"ok": 1}
        second = call(app, "POST", "/v1/repair", manifest)
        assert second.payload["counts"] == {"cached": 1}
        assert (
            second.payload["outcomes"][0]["result_digest"]
            == first.payload["outcomes"][0]["result_digest"]
        )

    def test_async_repair_polls_to_done(self, app):
        manifest = _manifest(_quickstart_spec())
        manifest["async"] = True
        resp = call(app, "POST", "/v1/repair", manifest)
        assert resp.status == 202
        poll = resp.payload["poll"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            state = call(app, "GET", poll)
            if state.payload["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert state.payload["state"] == "done"
        assert state.payload["report"]["counts"] == {"ok": 1}
        listing = call(app, "GET", "/v1/jobs")
        assert len(listing.payload["jobs"]) == 1
        assert call(app, "GET", "/v1/jobs/nope").status == 404

    def test_session_endpoints(self, app):
        resp = call(app, "POST", "/v1/sessions", {"name": "demo"})
        assert resp.status == 201
        resp = call(
            app,
            "POST",
            "/v1/sessions/demo/command",
            {"script": "Repair list New.list in rev_app_distr."},
        )
        assert resp.status == 200
        assert resp.payload["results"][0]["new_names"] == [
            "rev_app_distr'"
        ]
        assert (
            call(app, "GET", "/v1/sessions").payload["sessions"][0][
                "name"
            ]
            == "demo"
        )
        assert call(app, "GET", "/v1/sessions/demo").status == 200
        assert call(app, "DELETE", "/v1/sessions/demo").status == 200
        assert call(app, "GET", "/v1/sessions/demo").status == 404

    def test_rate_limit_spares_health_endpoints(self, tmp_path):
        config = ServerConfig(
            workers=1,
            rate=1.0,
            burst=2.0,
            store=False,
            quiet=True,
            sweep_interval_s=0.0,
        )
        app = RepairApp(config)
        try:
            assert call(app, "GET", "/v1/status").status == 200
            assert call(app, "GET", "/v1/status").status == 200
            limited = call(app, "GET", "/v1/status")
            assert limited.status == 429
            assert float(limited.headers["Retry-After"]) > 0
            for _ in range(5):
                assert call(app, "GET", "/healthz").status == 200
                assert call(app, "GET", "/metrics").status == 200
        finally:
            app.drain(5.0)

    def test_draining_refuses_work_but_health_stays_green(self, app):
        app.begin_drain()
        resp = call(app, "POST", "/v1/repair", _manifest(_quickstart_spec()))
        assert resp.status == 503
        assert resp.payload["error"]["code"] == "draining"
        health = call(app, "GET", "/healthz")
        assert health.status == 200
        assert health.payload["status"] == "draining"

    def test_metrics_exposition(self, app):
        call(app, "GET", "/healthz")
        resp = call(app, "GET", "/metrics")
        assert resp.status == 200
        assert resp.content_type.startswith("text/plain")
        text = resp.payload
        assert 'repro_http_requests_total{route="healthz"' in text
        assert "repro_http_request_duration_seconds_bucket" in text
        assert "repro_server_queue_depth" in text
        assert "repro_server_active_sessions" in text
        assert "repro_kernel_constructions_total" in text
