"""The command front end (the plugin's vernacular surface)."""

import pytest

from repro.commands import CommandError, CommandSession
from repro.stdlib import declare_list_type, make_env


@pytest.fixture()
def session():
    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    return CommandSession(env)


class TestRepairCommand:
    def test_repair_in(self, session):
        result = session.execute("Repair list New.list in rev_app_distr.")
        assert result.results[0].old_name == "rev_app_distr"
        assert session.env.has_constant("rev_app_distr'")

    def test_repair_as(self, session):
        result = session.execute(
            "Repair list New.list in app as New.app."
        )
        assert result.results[0].new_name == "New.app"

    def test_repair_reuses_configuration(self, session):
        session.execute("Configure list New.list")
        config_before = session._configs[("list", "New.list")]
        session.execute("Repair list New.list in app as A1")
        assert session._configs[("list", "New.list")] is config_before

    def test_usage_error(self, session):
        with pytest.raises(CommandError):
            session.execute("Repair list New.list rev_app_distr")


class TestModuleAndLifecycle:
    def test_repair_module_with_prefix(self, session):
        result = session.execute("Repair module list New.list prefix New")
        assert len(result.results) >= 10
        assert session.env.has_constant("New.rev_app_distr")

    def test_remove(self, session):
        session.execute("Repair module list New.list prefix New")
        session.execute("Remove list")
        assert not session.env.has_inductive("list")
        assert not session.env.has_constant("list_rect")

    def test_batch_script(self, session):
        results = session.run(
            """
            (* the Section 2 workflow as a script *)
            Configure list New.list
            Repair list New.list in rev_app_distr as New.rev_app_distr
            Decompile New.rev_app_distr
            """
        )
        assert len(results) == 3
        assert "induction" in results[-1].text


class TestDecompileReplay:
    def test_decompile_command(self, session):
        session.execute("Repair list New.list in rev_app_distr as R")
        result = session.execute("Decompile R")
        assert result.text.startswith("(* R *)")
        assert "Qed." in result.text

    def test_replay_command(self, session):
        session.execute("Repair list New.list in rev_app_distr as R")
        result = session.execute("Replay R")
        assert "replays and checks" in result.summary

    def test_decompile_unknown(self, session):
        with pytest.raises(Exception):
            session.execute("Decompile missing_constant")


class TestConfigure:
    def test_configure_with_mapping(self, session):
        result = session.execute("Configure list New.list mapping 1 0")
        assert tuple(result.config.b.perm) == (1, 0)

    def test_unknown_command(self, session):
        with pytest.raises(CommandError):
            session.execute("Frobnicate list")

    def test_history_accumulates(self, session):
        session.execute("Configure list New.list")
        session.execute("Repair list New.list in app as A2")
        assert len(session.history) == 2


class TestAnalyze:
    def test_analyze_whole_environment(self, session):
        result = session.execute("Analyze")
        assert result.summary.startswith("analyzed environment: 0 error(s)")
        assert result.text is None

    def test_analyze_one_constant(self, session):
        result = session.execute("Analyze rev_app_distr")
        assert result.summary.startswith("analyzed rev_app_distr: 0 error(s)")

    def test_analyze_reports_findings(self, session):
        from repro.kernel import App, Const, Sort

        session.env.assume(
            "dangling", App(Const("loose"), Sort(0)), check=False
        )
        result = session.execute("Analyze dangling")
        assert "1 error(s)" in result.summary
        assert "RA003" in result.text

    def test_analyze_usage_error(self, session):
        with pytest.raises(CommandError):
            session.execute("Analyze two names")
