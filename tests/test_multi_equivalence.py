"""Multiple equivalences in one pass (the Section 8 extension).

The paper lists "Multiple Equivalences" as an open challenge: deciding
which equivalence applies when several match.  The Transformer accepts a
list of configurations and tries their rules in order at every subterm,
which ports the Galois Handshake+Connection stack in a *single* pass
(the case study needs two sequential passes with one equivalence each).
"""

import pytest

from repro.cases.galois import setup_environment
from repro.core.search.tuples_records import (
    RecordSide,
    TupleSide,
    tuples_records_configuration,
)
from repro.core.config import Configuration
from repro.core.transform import Transformer
from repro.kernel import Context, check, mentions_global, pretty
from repro.syntax.parser import parse


@pytest.fixture(scope="module")
def single_pass():
    env = setup_environment()
    # Handshake: tuple alias -> record (with the proved equivalence).
    handshake = tuples_records_configuration(
        env, "Record.Handshake", tuple_alias="Galois.Handshake"
    )
    # Connection: the *raw* tuple (whose handshake field is the Handshake
    # tuple alias) -> the Connection record.  The field-type mismatch in
    # the middle is exactly what the Handshake configuration covers.
    record_side = RecordSide(env, "Record.Connection")
    raw_fields = list(record_side.field_types)
    from repro.kernel import Const

    raw_fields[3] = Const("Galois.Handshake")
    tuple_side = TupleSide(env, raw_fields, alias="Galois.Connection")
    connection = Configuration(a=tuple_side, b=record_side)
    transformer = Transformer(env, [connection, handshake])
    return env, transformer


class TestSinglePass:
    def test_cork_ports_in_one_pass(self, single_pass):
        env, transformer = single_pass
        cork = env.constant("cork")
        new_type = transformer(cork.type)
        new_body = transformer(cork.body)
        assert pretty(new_type, env=env) == (
            "Record.Connection -> Record.Connection"
        )
        for old in ("Galois.Connection", "Galois.Handshake"):
            assert not mentions_global(new_body, old)
            assert not mentions_global(new_type, old)
        check(env, Context.empty(), new_body, new_type)

    def test_handshake_values_port_through_connection_rule(self, single_pass):
        env, transformer = single_pass
        # A literal Connection tuple whose handshake component is a
        # Handshake tuple: both equivalences fire in one traversal.
        term = parse(
            env,
            """
            pair bool (prod (seq 2 bool) (prod (seq 8 bool)
              (prod Galois.Handshake (prod bool (prod bool
                (prod (seq 32 bool) (prod bool bool)))))))
              true
              (pair (seq 2 bool) (prod (seq 8 bool)
                (prod Galois.Handshake (prod bool (prod bool
                  (prod (seq 32 bool) (prod bool bool))))))
                (bvNat 2 0)
                (pair (seq 8 bool) (prod Galois.Handshake (prod bool
                  (prod bool (prod (seq 32 bool) (prod bool bool)))))
                  (bvNat 8 0)
                  (pair Galois.Handshake (prod bool (prod bool
                    (prod (seq 32 bool) (prod bool bool))))
                    (pair (seq 32 bool) (seq 32 bool)
                      (bvNat 32 0) (bvNat 32 1))
                    (pair bool (prod bool (prod (seq 32 bool)
                      (prod bool bool)))
                      false
                      (pair bool (prod (seq 32 bool) (prod bool bool))
                        false
                        (pair (seq 32 bool) (prod bool bool)
                          (bvNat 32 0)
                          (pair bool bool false true)))))))
            """,
        )
        out = transformer(term)
        rendered = pretty(out, env=env)
        assert "MkConnection" in rendered
        assert "MkHandshake" in rendered
        assert not mentions_global(out, "Galois.Handshake")

    def test_rule_order_matters_for_nested_types(self, single_pass):
        # The Connection configuration is listed first; a bare Handshake
        # value must still be handled by the second configuration.
        env, transformer = single_pass
        term = parse(
            env,
            "pair (seq 32 bool) (seq 32 bool) (bvNat 32 3) (bvNat 32 4)",
        )
        out = transformer(term)
        assert "MkHandshake" in pretty(out, env=env)
