"""The binary term codec: round-trips, sharing, and corruption refusal.

The differential fuzz suites mirror the NbE ones: seeded termgen terms
go through encode→decode→encode, asserting structural equality, arena
identity (when hash consing is on), and byte-for-byte encode stability.
The corruption suites hold the codec to its refuse-don't-crash
contract — *every* malformed input must surface as
:class:`SnapshotError`, never a deep ``KeyError``/``IndexError``/
``struct.error``.
"""

import random

import pytest

from repro.kernel.codec import (
    FORMAT_VERSION,
    KIND_TERM,
    MAGIC,
    Reader,
    SnapshotError,
    Writer,
    decode_term,
    decode_terms,
    encode_term,
    encode_terms,
    write_header,
)
from repro.kernel.term import (
    App,
    Const,
    Elim,
    Lam,
    Pi,
    Rel,
    Sort,
    hash_consing_enabled,
)
from tests.termgen import fuzz_terms

FUZZ_COUNT = 150


# -- Round-trip fidelity ------------------------------------------------------


class TestRoundTrip:
    def test_fuzz_decode_equals_original(self, env_lists):
        for label, term in fuzz_terms(2024, FUZZ_COUNT, env_lists, depth=5, binders=2):
            decoded = decode_term(encode_term(term))
            assert decoded == term, label

    def test_fuzz_encode_stability(self, env_lists):
        """encode(decode(encode(t))) is byte-identical to encode(t)."""
        for label, term in fuzz_terms(77, FUZZ_COUNT, env_lists, depth=5, binders=1):
            data = encode_term(term)
            assert encode_term(decode_term(data)) == data, label

    def test_fuzz_arena_identical_reload(self, env_lists):
        """With hash consing on, decoding lands on the same arena node."""
        if not hash_consing_enabled():
            pytest.skip("interning disabled: arena identity not expected")
        for label, term in fuzz_terms(9, 50, env_lists, depth=4, binders=1):
            assert decode_term(encode_term(term)) is term, label

    def test_binder_names_survive(self):
        term = Pi("widget", Sort(0), Lam("gadget", Rel(0), Rel(0)))
        decoded = decode_term(encode_term(term))
        assert decoded.name == "widget"
        assert decoded.codomain.name == "gadget"

    def test_sort_levels_including_prop(self):
        for level in (-1, 0, 1, 7, 200):
            assert decode_term(encode_term(Sort(level))).level == level

    def test_elim_round_trip(self, env_basic):
        term = Elim(
            "nat",
            Lam("n", App(Const("pred"), Rel(0)), Sort(0)),
            (Const("add"), Const("pred")),
            App(Const("add"), Const("pred")),
        )
        assert decode_term(encode_term(term)) == term

    def test_multi_root_stream(self):
        roots = (Sort(0), Const("add"), App(Const("add"), Sort(0)))
        assert decode_terms(encode_terms(roots)) == roots

    def test_empty_root_stream(self):
        assert decode_terms(encode_terms([])) == ()


class TestSharing:
    def test_shared_subterm_written_once(self):
        # A balanced tree of depth 10 over one shared leaf chain: the
        # tree has 2^10 leaves but the DAG only ~11 distinct nodes, and
        # the encoding must scale with the DAG.
        node = Const("add")
        for _ in range(10):
            node = App(node, node)
        data = encode_term(node)
        assert len(data) < 200

    def test_decoded_stream_preserves_sharing(self):
        shared = App(Const("add"), Const("pred"))
        term = App(shared, shared)
        decoded = decode_term(encode_term(term))
        # Sharing survives decode regardless of interning mode: both
        # children decode to the same table entry.
        assert decoded.fn is decoded.arg


# -- The error contract -------------------------------------------------------


def _assert_refused(data, label=""):
    """Decoding must raise SnapshotError — and nothing else."""
    with pytest.raises(SnapshotError):
        decode_term(data)


class TestCorruption:
    def test_empty_input(self):
        _assert_refused(b"")

    def test_bad_magic(self):
        _assert_refused(b"NOPE" + b"\x01" * 8)

    def test_unknown_format_version(self):
        writer = Writer()
        writer.raw(MAGIC)
        writer.uvarint(FORMAT_VERSION + 1)
        writer.u8(KIND_TERM)
        with pytest.raises(SnapshotError, match="version"):
            decode_term(writer.tobytes())

    def test_wrong_payload_kind(self):
        writer = Writer()
        write_header(writer, KIND_TERM + 7)
        _assert_refused(writer.tobytes())

    def test_every_truncation_refused(self, env_basic):
        data = encode_term(
            next(iter(fuzz_terms(5, 1, env_basic, depth=4, binders=1)))[1]
        )
        for cut in range(len(data)):
            _assert_refused(data[:cut], f"cut at {cut}")

    def test_trailing_garbage_refused(self, env_basic):
        data = encode_term(Sort(0))
        _assert_refused(data + b"\x00")

    def test_fuzz_flipped_bytes(self, env_lists):
        """Flipping any byte either still decodes or raises SnapshotError."""
        rng = random.Random(31337)
        for label, term in fuzz_terms(31337, 30, env_lists, depth=4, binders=1):
            data = bytearray(encode_term(term))
            for _ in range(30):
                index = rng.randrange(len(data))
                mutated = bytearray(data)
                mutated[index] ^= 1 << rng.randrange(8)
                try:
                    decode_term(bytes(mutated))
                except SnapshotError:
                    pass  # refused cleanly: the contract holds
                # Any other exception propagates and fails the test.

    def test_dangling_node_reference(self):
        # A PI node whose children reference itself (index 0 at decode
        # position 0 — forward/self references are dangling).
        writer = Writer()
        write_header(writer, KIND_TERM)
        writer.uvarint(1)  # string table: one name
        writer.uvarint(1)
        writer.raw(b"x")
        writer.uvarint(1)  # node table: one node
        writer.u8(6)  # _TAG_PI
        writer.uvarint(0)  # name
        writer.uvarint(0)  # domain -> itself: dangling
        writer.uvarint(0)  # codomain
        writer.uvarint(1)
        writer.uvarint(0)
        with pytest.raises(SnapshotError, match="dangling"):
            decode_term(writer.tobytes())

    def test_dangling_string_reference(self):
        writer = Writer()
        write_header(writer, KIND_TERM)
        writer.uvarint(0)  # empty string table
        writer.uvarint(1)
        writer.u8(3)  # _TAG_CONST
        writer.uvarint(5)  # string #5 of 0: dangling
        writer.uvarint(1)
        writer.uvarint(0)
        with pytest.raises(SnapshotError, match="string"):
            decode_term(writer.tobytes())

    def test_oversized_length_prefix(self):
        # A string-table count far beyond the remaining bytes.
        writer = Writer()
        write_header(writer, KIND_TERM)
        writer.uvarint(1 << 40)
        with pytest.raises(SnapshotError, match="oversized"):
            decode_term(writer.tobytes())

    def test_oversized_string_length(self):
        writer = Writer()
        write_header(writer, KIND_TERM)
        writer.uvarint(1)
        writer.uvarint(1 << 40)  # one string, absurd length
        with pytest.raises(SnapshotError, match="oversized|truncated"):
            decode_term(writer.tobytes())

    def test_unknown_node_tag(self):
        writer = Writer()
        write_header(writer, KIND_TERM)
        writer.uvarint(0)
        writer.uvarint(1)
        writer.u8(250)  # no such tag
        writer.uvarint(1)
        writer.uvarint(0)
        with pytest.raises(SnapshotError, match="tag"):
            decode_term(writer.tobytes())

    def test_invalid_utf8_in_string_table(self):
        writer = Writer()
        write_header(writer, KIND_TERM)
        writer.uvarint(1)
        writer.uvarint(2)
        writer.raw(b"\xff\xfe")
        writer.uvarint(0)
        writer.uvarint(0)
        with pytest.raises(SnapshotError, match="UTF-8"):
            decode_term(writer.tobytes())

    def test_non_bytes_input(self):
        with pytest.raises(SnapshotError, match="bytes"):
            decode_term("not bytes")  # type: ignore[arg-type]

    def test_multi_root_stream_rejected_by_single_decoder(self):
        data = encode_terms([Sort(0), Sort(1)])
        with pytest.raises(SnapshotError, match="single-root"):
            decode_term(data)

    def test_oversized_varint_refused(self):
        # An unsigned varint longer than 64 bits of payload.
        reader = Reader(b"\xff" * 10 + b"\x01")
        with pytest.raises(SnapshotError, match="oversized varint"):
            reader.uvarint("test")

    def test_negative_varint_unencodable(self):
        with pytest.raises(SnapshotError):
            Writer().uvarint(-1)
