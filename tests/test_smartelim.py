"""Generated custom eliminators for refinement types (Section 4.4)."""

import pytest

from repro.core.search.smartelim import generate_refinement_eliminator
from repro.kernel import Context, check, nf, pretty
from repro.stdlib import make_env
from repro.syntax.parser import parse


@pytest.fixture(scope="module")
def env_with_smartelim():
    env = make_env(lists=True, vectors=False)
    smart = generate_refinement_eliminator(
        env,
        name="sized_list",
        carrier="list T",
        measure="length T",
        param_binders=(("T", "Type1"),),
    )
    return env, smart


class TestGeneration:
    def test_all_pieces_defined(self, env_with_smartelim):
        env, smart = env_with_smartelim
        for name in (smart.refined, smart.intro, smart.elim,
                     smart.proj1, smart.proj2):
            assert env.has_constant(name)

    def test_refined_type_shape(self, env_with_smartelim):
        env, smart = env_with_smartelim
        rendered = pretty(env.constant(smart.refined).body, env=env)
        assert "sigT" in rendered
        assert "length" in rendered

    def test_proj2_carries_measure_equality(self, env_with_smartelim):
        env, smart = env_with_smartelim
        ty = env.constant(smart.proj2).type
        rendered = pretty(ty, env=env)
        assert "eq nat" in rendered


class TestUse:
    def test_intro_then_projections_compute(self, env_with_smartelim):
        env, smart = env_with_smartelim
        packed = parse(
            env,
            f"{smart.intro} nat 2 (cons nat 5 (cons nat 6 (nil nat))) "
            f"(eq_refl nat 2)",
        )
        first = nf(env, parse(
            env, f"{smart.proj1} nat 2"
        ).app(packed))
        assert first == nf(
            env, parse(env, "cons nat 5 (cons nat 6 (nil nat))")
        )

    def test_smart_elim_proves_a_property_by_parts(self, env_with_smartelim):
        # Use the eliminator to prove: the measure of the first projection
        # is n — separating the list reasoning from the equality.
        env, smart = env_with_smartelim
        stmt = parse(
            env,
            f"""
            forall (T : Type1) (n : nat) (s : {smart.refined} T n),
              eq nat (length T ({smart.proj1} T n s)) n
            """,
        )
        proof = parse(
            env,
            f"""
            fun (T : Type1) (n : nat) (s : {smart.refined} T n) =>
              {smart.elim} T n
                (fun (s0 : {smart.refined} T n) =>
                   eq nat (length T ({smart.proj1} T n s0)) n)
                (fun (x : list T) (H : eq nat (length T x) n) => H)
                s
            """,
        )
        check(env, Context.empty(), proof, stmt)

    def test_elim_conclusion_needs_no_sigma_eta(self, env_with_smartelim):
        # The eliminator concludes Q s directly (sigma eliminated first).
        env, smart = env_with_smartelim
        ty = env.constant(smart.elim).type
        rendered = pretty(ty, env=env)
        assert rendered.endswith("Q s") or "Q s" in rendered
