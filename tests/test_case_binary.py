"""Section 6.3 end to end: unary to binary numbers (nonorn.v)."""

from repro.kernel import Const, Context, check, mentions_global, mk_app, nf, pretty
from repro.syntax.parser import parse


def binary(env, k):
    return nf(env, parse(env, f"N.of_nat {k}"))


class TestSlowAdd:
    def test_repair_was_fully_automatic(self, binary_scenario):
        # "We ported unary addition from nat to N fully automatically."
        result = binary_scenario.slow_add
        assert result.old_name == "add"
        assert result.new_name == "slow_add"

    def test_no_reference_to_nat(self, binary_scenario):
        # "However, it no longer refers to nat in any way."
        s = binary_scenario
        assert not mentions_global(s.slow_add.term, "nat")
        assert not mentions_global(s.slow_add.type, "nat")

    def test_uses_peano_rect(self, binary_scenario):
        assert mentions_global(binary_scenario.slow_add.term, "N.peano_rect")

    def test_slow_add_computes_correctly(self, binary_scenario):
        env = binary_scenario.env
        for a, b in [(0, 0), (1, 5), (19, 23), (64, 64)]:
            total = nf(
                env, mk_app(Const("slow_add"), [binary(env, a), binary(env, b)])
            )
            assert total == binary(env, a + b)


class TestIotaPorting:
    def test_marked_proof_ports(self, binary_scenario):
        s = binary_scenario
        assert s.slow_add_n_Sm.new_name == "slow_add_n_Sm"
        assert not mentions_global(s.slow_add_n_Sm.term, "nat")

    def test_ported_proof_uses_iota_over_N(self, binary_scenario):
        # The explicit iota marks became iota over N.
        assert mentions_global(binary_scenario.slow_add_n_Sm.term, "iota_N_1")
        assert not mentions_global(
            binary_scenario.slow_add_n_Sm.term, "iota_nat_1"
        )

    def test_ported_statement(self, binary_scenario):
        env = binary_scenario.env
        rendered = pretty(binary_scenario.slow_add_n_Sm.type, env=env)
        assert "N.succ (slow_add n m)" in rendered
        assert "slow_add n (N.succ m)" in rendered

    def test_iota_N_1_is_peano_rect_succ_rewrite(self, binary_scenario):
        env = binary_scenario.env
        decl = env.constant("iota_N_1")
        assert mentions_global(decl.body, "N.peano_rect_succ")


class TestFastAddition:
    def test_add_fast_add(self, binary_scenario):
        # Lemma add_fast_add: forall n m, slow_add n m = N.add n m.
        env = binary_scenario.env
        decl = env.constant("add_fast_add")
        check(env, Context.empty(), decl.body, decl.type)

    def test_theorem_transfers_to_fast_add(self, binary_scenario):
        env = binary_scenario.env
        decl = env.constant("N.add_n_Sm")
        check(env, Context.empty(), decl.body, decl.type)
        rendered = pretty(decl.type, env=env)
        assert "N.add" in rendered
        assert "slow_add" not in rendered
