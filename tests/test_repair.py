"""The Repair / Repair module commands (Figure 6 workflows)."""

import pytest

from repro.core import RepairError, RepairSession, configure, repair, repair_module
from repro.core.search.swap import swap_configuration
from repro.kernel import Const, Context, check, mentions_global, typecheck_closed
from repro.stdlib import declare_list_type, make_env
from repro.syntax.parser import parse


def fresh_env():
    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    return env


class TestRepairSingle:
    def test_repair_defines_new_constant(self):
        env = fresh_env()
        config = swap_configuration(env, "list", "New.list")
        result = repair(
            env, config, "app", old_globals=["list"],
            rename=lambda n: f"New.{n}",
        )
        assert result.new_name == "New.app"
        assert env.has_constant("New.app")
        assert not mentions_global(result.term, "list")

    def test_repair_pulls_dependencies(self):
        env = fresh_env()
        config = swap_configuration(env, "list", "New.list")
        session = RepairSession(
            env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
        )
        session.repair_constant("rev_app_distr")
        assert set(session.results) >= {
            "app", "rev", "app_assoc", "app_nil_r", "rev_app_distr"
        }

    def test_repaired_proofs_check_against_repaired_statements(self):
        env = fresh_env()
        config = swap_configuration(env, "list", "New.list")
        session = RepairSession(
            env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
        )
        result = session.repair_constant("rev_app_distr")
        check(env, Context.empty(), result.term, result.type)

    def test_repair_term_api(self):
        env = fresh_env()
        config = swap_configuration(env, "list", "New.list")
        session = RepairSession(env, config, old_globals=["list"])
        out = session.repair_term(parse(env, "list.cons nat 1 (list.nil nat)"))
        assert not mentions_global(out, "list")

    def test_repair_bodyless_constant_fails(self):
        env = fresh_env()
        env.assume("ax", parse(env, "list nat"))
        config = swap_configuration(env, "list", "New.list")
        session = RepairSession(env, config, old_globals=["list"])
        with pytest.raises(RepairError):
            session.repair_constant("ax")


class TestRepairModule:
    def test_module_covers_all_dependents(self):
        env = fresh_env()
        config = swap_configuration(env, "list", "New.list")
        results = repair_module(
            env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
        )
        repaired = {r.old_name for r in results}
        assert {
            "app", "rev", "length", "app_nil_r", "app_assoc",
            "rev_app_distr", "zip", "zip_with", "zip_with_is_zip",
        } <= repaired

    def test_recursors_are_skipped(self):
        env = fresh_env()
        config = swap_configuration(env, "list", "New.list")
        results = repair_module(
            env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
        )
        assert all(not r.old_name.endswith("_rect") for r in results)

    def test_remove_old_after_module_repair(self):
        env = fresh_env()
        config = swap_configuration(env, "list", "New.list")
        session = RepairSession(
            env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
        )
        session.repair_module()
        session.remove_old()
        assert not env.has_inductive("list")
        assert not env.has_constant("list_rect")
        # Everything repaired still checks after removal.
        for result in session.results.values():
            typecheck_closed(env, Const(result.new_name))


class TestConfigureDispatcher:
    def test_dispatch_swap(self):
        env = fresh_env()
        config = configure(env, "list", "New.list")
        assert config.equivalence is not None

    def test_dispatch_ornament(self):
        env = make_env(lists=True, vectors=True)
        config = configure(env, "list", "vector", prove=False)
        assert config.b.n_constrs == 2

    def test_dispatch_records(self):
        from repro.kernel import Ind
        from repro.stdlib import declare_record

        env = make_env(lists=False, vectors=False)
        env.define("PairT", parse(env, "prod nat bool"))
        declare_record(
            env, "Rec", [("first", Ind("nat")), ("second", Ind("bool"))]
        )
        config = configure(env, "PairT", "Rec")
        assert config.equivalence is not None

    def test_dispatch_failure_is_informative(self):
        from repro.core import ConfigError

        env = fresh_env()
        with pytest.raises(ConfigError):
            configure(env, "nat", "bool")
