"""The swap/rename search procedure and its equivalence proofs."""


import pytest

from repro.core import ConfigError
from repro.core.search.swap import (
    build_map_function,
    find_constructor_mappings,
    swap_configuration,
)
from repro.kernel import Ind, mk_app, nf, typecheck_closed
from repro.stdlib import declare_list_type, make_env
from repro.syntax.parser import parse


@pytest.fixture(scope="module")
def env():
    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    return env


class TestMappingSearch:
    def test_swapped_list_mapping(self, env):
        mappings = list(find_constructor_mappings(env, "list", "New.list"))
        assert mappings == [(1, 0)]

    def test_identity_mapping_comes_first(self, env):
        mappings = find_constructor_mappings(env, "list", "list")
        assert next(iter(mappings)) == (0, 1)

    def test_incompatible_types_yield_nothing(self, env):
        assert list(find_constructor_mappings(env, "list", "nat")) == []

    def test_replica_term_has_24_mappings(self):
        from repro.cases.replica import (
            declare_term_language,
            setup_environment,
        )

        renv = setup_environment()
        declare_term_language(
            renv,
            "Probe.Term",
            order=["Var", "Eq", "Int", "Plus", "Times", "Minus", "Choose"],
        )
        mappings = list(
            find_constructor_mappings(renv, "Old.Term", "Probe.Term")
        )
        assert len(mappings) == 24
        # The desired swap comes first.
        assert mappings[0] == (0, 2, 1, 3, 4, 5, 6)

    def test_enum_30_first_mapping_is_lazy(self):
        import time

        from repro.cases.replica import declare_enum

        env = make_env(lists=False, vectors=False)
        declare_enum(env, "Enum", size=30)
        declare_enum(env, "Enum2", size=30)
        start = time.time()
        first = next(iter(find_constructor_mappings(env, "Enum", "Enum2")))
        assert time.time() - start < 5.0
        assert first == tuple(range(30))  # names align


class TestConfigurationConstruction:
    def test_default_mapping_is_first_candidate(self, env):
        config = swap_configuration(env, "list", "New.list", prove=False)
        assert tuple(config.b.perm) == (1, 0)

    def test_explicit_mapping(self, env):
        config = swap_configuration(
            env, "list", "New.list", mapping=(1, 0), prove=False
        )
        assert tuple(config.b.perm) == (1, 0)

    def test_no_mapping_raises(self, env):
        with pytest.raises(ConfigError):
            swap_configuration(env, "list", "nat")


class TestEquivalenceGeneration:
    def test_map_function_shape(self, env):
        f = build_map_function(env, "list", "New.list", (1, 0))
        ty = typecheck_closed(env, f)
        rendered_ok = ty is not None
        assert rendered_ok

    def test_figure3_equivalence_proved(self, env):
        config = swap_configuration(env, "list", "New.list")
        eqv = config.equivalence
        assert eqv is not None
        for proof in (eqv.section, eqv.retraction):
            typecheck_closed(env, proof)

    def test_equivalence_computes_roundtrip(self, env):
        config = swap_configuration(env, "list", "New.list")
        xs = parse(env, "list.cons nat 1 (list.cons nat 2 (list.nil nat))")
        mapped = nf(env, mk_app(config.equivalence.f, [Ind("nat"), xs]))
        back = nf(env, mk_app(config.equivalence.g, [Ind("nat"), mapped]))
        assert back == nf(env, xs)

    def test_equivalence_for_multi_recursive_ctors(self):
        # The Term language has binary recursive constructors; the
        # generated section proof must rewrite along two IHs.
        from repro.cases.replica import (
            declare_term_language,
            setup_environment,
        )
        from repro.core.search.swap import prove_swap_equivalence

        env = setup_environment()
        declare_term_language(
            env,
            "Probe.Term",
            order=["Var", "Eq", "Int", "Plus", "Times", "Minus", "Choose"],
        )
        eqv = prove_swap_equivalence(
            env, "Old.Term", "Probe.Term", (0, 2, 1, 3, 4, 5, 6)
        )
        typecheck_closed(env, eqv.section)
        typecheck_closed(env, eqv.retraction)
