"""Decompile-and-replay across the repaired case-study proofs.

The paper's usability claim is that suggested scripts are close enough to
maintain; here the bar is mechanical: decompile each repaired proof and
replay it against the repaired statement.
"""

import pytest

from repro.decompile.decompiler import decompile_to_script, print_script
from repro.decompile.run import run_script
from repro.kernel import Context, check


def roundtrip(env, name):
    decl = env.constant(name)
    script = decompile_to_script(env, decl.body)
    proof = run_script(env, decl.type, script)
    check(env, Context.empty(), proof, decl.type)
    return script, print_script(script, name=name)


class TestQuickstartModule:
    @pytest.mark.parametrize(
        "name",
        [
            "New.app_nil_r",
            "New.app_assoc",
            "New.rev_app_distr",
            "New.map_app",
            "New.app_length",
            "New.map_length",
            "New.fold_right_app",
        ],
    )
    def test_repaired_lemma_replays(self, quickstart_scenario, name):
        env = quickstart_scenario.env
        _script, text = roundtrip(env, name)
        assert text.startswith(f"(* {name} *)")


class TestConstrRefactor:
    def test_demorgan_replays_over_J(self, refactor_scenario):
        env = refactor_scenario.env
        script, text = roundtrip(env, "J.demorgan_1")
        # The J proof destructs via makeJ and then the inner bool.
        assert "induction" in text

    def test_demorgan_2_replays(self, refactor_scenario):
        env = refactor_scenario.env
        roundtrip(env, "J.demorgan_2")


class TestStdlibProofs:
    @pytest.mark.parametrize(
        "name",
        ["add_n_O", "add_n_Sm", "add_comm", "add_assoc",
         "app_nil_r", "app_assoc", "rev_app_distr", "rev_involutive"],
    )
    def test_stdlib_lemma_replays(self, env_lists, name):
        roundtrip(env_lists, name)
