"""Impact-pruned scheduling: skips, soundness, modes, CLI, vernacular.

The contract under test: pruning with a change-impact plan must never
change what a batch produces.  Certified-unaffected jobs complete as
``skipped-unaffected`` with evidence; everything else runs and yields
the byte-identical ``result_digest`` it would have without the plan;
and the ``--no-impact`` differential gate (:func:`verify_impact`)
catches any plan that lies.
"""

import dataclasses
import json

import pytest

from repro.analysis.impact import VERDICT_UNAFFECTED
from repro.service import (
    STATUS_SKIPPED_UNAFFECTED,
    BatchOptions,
    JobError,
    RepairJob,
    build_batch_impact,
    run_batch,
    verify_impact,
)
from repro.service.cli import main as service_main
from repro.service.job import LIVE_SETUP, result_digest
from repro.service.planner import (
    MODE_CHECK,
    MODE_PRUNE,
    BatchImpact,
    _group_key,
    default_impact_mode,
)
from repro.service.synth import AFFECTED_TARGETS, SMALL_WIDTH, wide_jobs


def _spec(job):
    """A job's re-parseable description (payload minus wire envelope)."""
    return {
        k: v
        for k, v in job.payload().items()
        if k not in ("key", "schema_version")
    }


def _respec(job, **overrides):
    return RepairJob.from_dict(dict(_spec(job), **overrides), where="test")


@pytest.fixture(scope="module")
def small_batch():
    jobs = wide_jobs(small=True)
    return jobs, build_batch_impact(jobs)


class TestBatchImpact:
    def test_skippable_only_for_certified_unaffected(self, small_batch):
        jobs, impact = small_batch
        by_target = {job.target: job for job in jobs}
        evidence = impact.skippable(by_target["wide.d0"])
        assert evidence is not None
        assert evidence["verdict"] == VERDICT_UNAFFECTED
        assert evidence["code"] == "RA401"
        assert len(evidence["plan_digest"]) == 64
        assert len(evidence["evidence_digest"]) == 64
        for target in AFFECTED_TARGETS:
            assert impact.skippable(by_target[target]) is None

    def test_stale_fingerprint_refuses_the_plan(self, small_batch):
        jobs, impact = small_batch
        job = jobs[0]
        stale = _respec(job, env_fingerprint="stale")
        # The honest lookup misses (group key includes the fingerprint)...
        assert impact.plan_for(stale) is None
        # ...and even a plan filed under the stale job's key is refused
        # when its recorded fingerprint disagrees.
        plan = impact.plan_for(job)
        forged = BatchImpact({_group_key(stale): plan})
        assert forged.plan_for(stale) is None
        assert forged.skippable(stale) is None

    def test_live_jobs_need_the_session_environment(self, small_batch):
        jobs, _ = small_batch
        live = _respec(jobs[0], setup=LIVE_SETUP)
        with pytest.raises(JobError, match="session environment"):
            build_batch_impact([live])

    def test_digests_map_setup_to_plan(self, small_batch):
        jobs, impact = small_batch
        digests = impact.digests()
        assert set(digests) == {jobs[0].setup}
        assert digests[jobs[0].setup] == impact.plan_for(jobs[0]).digest


class TestSchedulerPrune:
    def test_pruned_batch_skips_exactly_the_certified_jobs(
        self, small_batch
    ):
        jobs, impact = small_batch
        report = run_batch(
            jobs, BatchOptions(jobs=1, backoff_s=0.0, impact=impact)
        )
        assert report.ok
        assert report.counts == {
            STATUS_SKIPPED_UNAFFECTED: SMALL_WIDTH,
            "ok": len(AFFECTED_TARGETS),
        }
        for outcome in report.outcomes:
            if outcome.status == STATUS_SKIPPED_UNAFFECTED:
                assert outcome.impact["code"] == "RA401"
                assert outcome.result is None
                assert outcome.to_dict()["impact"] == outcome.impact
            else:
                assert outcome.job.target in AFFECTED_TARGETS

    def test_pruning_never_changes_surviving_outputs(self, small_batch):
        jobs, impact = small_batch
        full = run_batch(jobs, BatchOptions(jobs=1, backoff_s=0.0))
        pruned = run_batch(
            jobs, BatchOptions(jobs=1, backoff_s=0.0, impact=impact)
        )
        full_digests = {
            o.job.name: result_digest(o.result) for o in full.outcomes
        }
        for outcome in pruned.outcomes:
            if outcome.status == STATUS_SKIPPED_UNAFFECTED:
                continue
            assert (
                result_digest(outcome.result)
                == full_digests[outcome.job.name]
            )

    def test_dependents_of_skipped_jobs_still_run(self, small_batch):
        jobs, impact = small_batch
        by_target = {job.target: job for job in jobs}
        chained = _respec(
            by_target["rev"],
            name="wide/rev-after-skip",
            after=["wide/wide.d0"],
        )
        report = run_batch(
            [by_target["wide.d0"], chained],
            BatchOptions(jobs=1, backoff_s=0.0, impact=impact),
        )
        assert report.outcome("wide/wide.d0").status == (
            STATUS_SKIPPED_UNAFFECTED
        )
        assert report.outcome("wide/rev-after-skip").status == "ok"


class TestDifferentialGate:
    def test_forced_run_of_sound_plan_has_no_violations(self, small_batch):
        jobs, impact = small_batch
        full = run_batch(jobs, BatchOptions(jobs=1, backoff_s=0.0))
        assert verify_impact(full, impact) == []

    def test_lying_plan_is_caught(self, small_batch):
        jobs, impact = small_batch
        full = run_batch(jobs, BatchOptions(jobs=1, backoff_s=0.0))
        plan = impact.plan_for(jobs[0])
        entry = plan.entries["wide.d0"]
        plan.entries["wide.d0"] = dataclasses.replace(
            entry, term_digest="0" * 64
        )
        violations = verify_impact(full, impact)
        assert len(violations) == 1
        assert "wide.d0" in violations[0]
        assert "term" in violations[0]
        plan.entries["wide.d0"] = entry

    def test_six_case_batch_plan_is_sound(self):
        from repro.service.cases import six_case_jobs

        jobs = six_case_jobs()
        impact = build_batch_impact(jobs)
        full = run_batch(jobs, BatchOptions(jobs=1, backoff_s=0.0))
        assert full.ok
        assert verify_impact(full, impact) == []


class TestModes:
    @pytest.mark.parametrize(
        "raw,mode",
        [
            ("", None),
            ("0", None),
            ("off", None),
            ("no", None),
            ("false", None),
            ("1", MODE_PRUNE),
            ("prune", MODE_PRUNE),
            ("yes", MODE_PRUNE),
            ("check", MODE_CHECK),
            ("verify", MODE_CHECK),
            ("differential", MODE_CHECK),
        ],
    )
    def test_env_var_selects_the_mode(self, monkeypatch, raw, mode):
        monkeypatch.setenv("REPRO_IMPACT", raw)
        assert default_impact_mode() == mode

    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_IMPACT", raising=False)
        assert default_impact_mode() is None


class TestServiceCli:
    def _manifest(self, tmp_path):
        jobs = wide_jobs(small=True)
        path = tmp_path / "wide.json"
        path.write_text(
            json.dumps(
                {"batch": "wide-small",
                 "jobs": [_spec(job) for job in jobs]}
            )
        )
        return str(path)

    def test_impact_flag_prunes_and_reports(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = service_main(
            [
                self._manifest(tmp_path),
                "--no-store",
                "--jobs", "1",
                "--impact",
                "--impact-store", str(tmp_path / "plans"),
                "--report", str(report_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        document = json.loads(report_path.read_text())
        assert document["counts"][STATUS_SKIPPED_UNAFFECTED] == SMALL_WIDTH
        assert document["impact"]["mode"] == MODE_PRUNE
        assert document["impact"]["violations"] == []
        assert set(document["impact"]["plans"]) == {
            "repro.service.synth:wide_env_small"
        }

    def test_no_impact_flag_runs_everything_and_verifies(
        self, tmp_path, capsys
    ):
        report_path = tmp_path / "report.json"
        code = service_main(
            [
                self._manifest(tmp_path),
                "--no-store",
                "--jobs", "1",
                "--no-impact",
                "--impact-store", str(tmp_path / "plans"),
                "--report", str(report_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        document = json.loads(report_path.read_text())
        assert STATUS_SKIPPED_UNAFFECTED not in document["counts"]
        assert document["counts"]["ok"] == SMALL_WIDTH + len(
            AFFECTED_TARGETS
        )
        assert document["impact"]["mode"] == MODE_CHECK
        assert document["impact"]["violations"] == []

    def test_flags_are_mutually_exclusive(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            service_main(
                [self._manifest(tmp_path), "--impact", "--no-impact"]
            )
        capsys.readouterr()


class TestRepairBatchCommand:
    def _session(self):
        from repro.cases.quickstart import setup_environment
        from repro.commands import CommandSession

        return CommandSession(setup_environment())

    def test_trailing_impact_token_prunes_unaffected_targets(self):
        session = self._session()
        result = session.execute(
            "Repair Batch list New.list in add rev impact"
        )
        assert result.report.counts == {
            "ok": 1,
            STATUS_SKIPPED_UNAFFECTED: 1,
        }
        assert result.report.outcome("add").status == (
            STATUS_SKIPPED_UNAFFECTED
        )
        assert [r.old_name for r in result.results] == ["rev"]
        assert "1 skipped-unaffected" in result.summary

    def test_trailing_no_impact_token_runs_and_verifies(self):
        session = self._session()
        result = session.execute(
            "Repair Batch list New.list in add rev no-impact"
        )
        assert result.report.counts == {"ok": 2}

    def test_env_var_defaults_the_vernacular_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_IMPACT", "1")
        session = self._session()
        result = session.execute("Repair Batch list New.list in add rev")
        assert result.report.counts == {
            "ok": 1,
            STATUS_SKIPPED_UNAFFECTED: 1,
        }
