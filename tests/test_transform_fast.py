"""The transformer fast path: stack driver vs. legacy recursive driver.

The explicit-stack post-order driver (the default) and the original
recursive transformer must be observationally identical — same arena
objects out, same errors, same analysis diagnostics — with the recursive
driver kept reachable via ``REPRO_DISABLE_TRANSFORM_FAST=1`` /
:func:`repro.kernel.fastpath.set_transform_fast` as the escape hatch.
The differential fuzz here drives both over randomized swap/rename
configurations on terms steered toward ``list``/``nat`` so the Figure 10
rules actually fire; the deep-numeral test pins the fix for the legacy
``_eta_expand_binder`` recursion blowing the Python stack.
"""

import pytest

from repro.analysis import AnalysisError, set_analysis
from repro.core import TransformCache, Transformer
from repro.core.search.refine_unit import refine_unit_configuration
from repro.core.search.swap import swap_configuration
from repro.kernel import (
    App,
    Constr,
    Ind,
    Lam,
    Rel,
    mentions_global,
    set_transform_fast,
    transform_fast_enabled,
)
from repro.kernel.stats import KERNEL_STATS
from repro.kernel.term import hash_consing_enabled
from repro.obs import get_tracer, reset_tracer, set_tracing
from repro.stdlib import declare_list_type, make_env
from tests.termgen import fuzz_terms


@pytest.fixture(scope="module")
def swap_env():
    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    return env


def _fresh_config(env, rename=False):
    config = swap_configuration(env, "list", "New.list", prove=False)
    if rename:
        config.const_map["app"] = "New.app"
        config.const_map["length"] = "New.length"
    return config


def _same_output(a, b):
    """Arena-identical when interning is on; merely equal suffices off.

    Hash-consing makes equal results the same object, so ``is`` is the
    strongest possible assertion — but under
    ``REPRO_DISABLE_KERNEL_CACHES=1`` every construction allocates fresh
    nodes and only structural equality is meaningful.
    """
    return a is b if hash_consing_enabled() else a == b


def _run_driver(env, config, term, fast, analyze=False):
    """Transform ``term`` under one driver; normalize the outcome."""
    previous_fast = set_transform_fast(fast)
    previous_analyze = set_analysis(analyze) if analyze else None
    try:
        transformer = Transformer(
            env, config, cache=TransformCache(), reduce_output=False
        )
        try:
            return ("ok", transformer(term))
        except Exception as exc:  # noqa: BLE001 — drivers must agree
            codes = exc.codes if isinstance(exc, AnalysisError) else None
            return ("err", type(exc).__name__, str(exc), codes)
    finally:
        if previous_analyze is not None:
            set_analysis(previous_analyze)
        set_transform_fast(previous_fast)


# -- Differential fuzz ---------------------------------------------------------


class TestDifferentialFuzz:
    def test_drivers_agree_on_random_terms(self, swap_env):
        """Arena-identical outputs (or equal errors) on 200 fuzz terms."""
        for rename in (False, True):
            config = _fresh_config(swap_env, rename=rename)
            for label, term in fuzz_terms(
                20260809 + rename,
                100,
                swap_env,
                depth=4,
                consts=("add", "pred", "app", "rev", "length"),
                inds=("nat", "bool", "list"),
                constr_inds=("nat", "list"),
            ):
                fast = _run_driver(swap_env, config, term, fast=True)
                legacy = _run_driver(swap_env, config, term, fast=False)
                assert fast[0] == legacy[0], (label, fast, legacy)
                if fast[0] == "ok":
                    # Strongest when interning is on: anything weaker
                    # than identity means one driver left the arena.
                    assert _same_output(fast[1], legacy[1]), (
                        label,
                        fast[1],
                        legacy[1],
                    )
                else:
                    assert fast[1:] == legacy[1:], (label, fast, legacy)

    def test_drivers_agree_under_analysis_gate(self, swap_env):
        """Equal diagnostics (REPRO_ANALYZE semantics) on both drivers."""
        config = _fresh_config(swap_env)
        for label, term in fuzz_terms(
            97,
            60,
            swap_env,
            depth=4,
            consts=("add", "pred", "app"),
            inds=("nat", "list"),
            constr_inds=("nat", "list"),
        ):
            fast = _run_driver(
                swap_env, config, term, fast=True, analyze=True
            )
            legacy = _run_driver(
                swap_env, config, term, fast=False, analyze=True
            )
            assert fast[0] == legacy[0], (label, fast, legacy)
            if fast[0] == "ok":
                assert _same_output(fast[1], legacy[1]), label
            else:
                # Same error, same analysis codes (None for non-analysis
                # errors on both sides).
                assert fast[1:] == legacy[1:], (label, fast, legacy)


# -- The deep-body eta-expansion regression ------------------------------------


@pytest.mark.skipif(
    not hash_consing_enabled(),
    reason="REPRO_DISABLE_KERNEL_CACHES=1 routes rule application through "
    "the legacy recursive beta_reduce, whose documented ReduceError depth "
    "limit predates (and is orthogonal to) the transformer driver",
)
def test_eta_expansion_survives_deep_bodies():
    """An S^1500-style numeral under a sigma-eta config must transform.

    The legacy ``_eta_expand_binder`` re-walked binder bodies with plain
    recursion, so a body deeper than the Python stack raised
    ``RecursionError``; the fused stack driver is heap-bounded.
    """
    env = make_env()
    config = refine_unit_configuration(env, "nat")
    body = Rel(0)
    for _ in range(1500):
        body = App(Constr("nat", 1), body)
    term = Lam("s", Ind("nat"), body)
    previous = set_transform_fast(True)
    try:
        out = Transformer(env, config, reduce_output=False)(term)
    finally:
        set_transform_fast(previous)
    # The binder now ranges over the packed type and the numeral spine
    # was rebuilt through the packed constructors.
    assert mentions_global(out, "sigT")
    assert not mentions_global(out.domain, "nat") or mentions_global(
        out.domain, "sigT"
    )


# -- Observability -------------------------------------------------------------


class TestObservability:
    def test_transform_cache_counters_in_kernel_stats(self, swap_env):
        config = _fresh_config(swap_env)
        counter = KERNEL_STATS.counter("transform_cache")
        hits0, misses0 = counter.hits, counter.misses
        transformer = Transformer(swap_env, config)
        term = swap_env.constant("rev_app_distr").body
        transformer(term)
        assert counter.misses > misses0
        misses_after_first = counter.misses
        transformer(term)
        assert counter.hits > hits0
        assert counter.misses == misses_after_first

    def test_transform_span_carries_hit_rate_gauge(self, swap_env):
        config = _fresh_config(swap_env)
        previous = set_tracing(True)
        reset_tracer()
        try:
            transformer = Transformer(swap_env, config)
            term = swap_env.constant("rev_app_distr").body
            transformer(term)
            transformer(term)
            spans = [
                s for s in get_tracer().spans if s.name == "transform"
            ]
        finally:
            reset_tracer()
            set_tracing(previous)
        assert len(spans) == 2
        first, second = spans
        assert 0.0 <= first.gauges["transform_cache_hit_rate"] < 1.0
        # The second pass replays the same term: everything hits.
        assert second.gauges["transform_cache_hit_rate"] == 1.0
        for sp in spans:
            assert sp.gauges["term_size_in"] >= 1
            assert sp.gauges["term_depth_in"] >= 1
            assert sp.gauges["term_size_out"] >= 1
            assert sp.gauges["term_depth_out"] >= 1


# -- The escape hatch ----------------------------------------------------------


class TestEscapeHatch:
    def test_set_transform_fast_round_trips(self):
        original = transform_fast_enabled()
        try:
            assert set_transform_fast(False) == original
            assert transform_fast_enabled() is False
            assert set_transform_fast(True) is False
            assert transform_fast_enabled() is True
        finally:
            set_transform_fast(original)

    def test_legacy_driver_still_repairs(self, swap_env):
        """The escape hatch runs the recursive driver end to end."""
        config = _fresh_config(swap_env)
        term = swap_env.constant("rev_app_distr").body
        fast = _run_driver(swap_env, config, term, fast=True)
        legacy = _run_driver(swap_env, config, term, fast=False)
        assert fast[0] == legacy[0] == "ok"
        assert _same_output(fast[1], legacy[1])
