"""Side implementations: AlignedSide, TermSide, MarkedIotaSide."""

import pytest

from repro.core.config import (
    AlignedSide,
    ElimMatch,
    MarkedIotaSide,
    Side,
    TermSide,
)
from repro.kernel import Const, Constr, Context, Elim, Ind, Lam, nf
from repro.stdlib import make_env
from repro.stdlib.natlib import nat_of_int
from repro.syntax.parser import parse


@pytest.fixture(scope="module")
def env():
    return make_env(lists=True, vectors=False)


class TestSideDefaults:
    def test_base_side_matches_nothing(self, env):
        side = Side()
        ctx = Context.empty()
        term = parse(env, "S O")
        assert side.match_type(env, term) is None
        assert side.match_constr(env, ctx, term) is None
        assert side.match_elim(env, ctx, term) is None
        assert side.match_iota(env, ctx, term) is None
        assert side.match_proj(env, ctx, term) is None

    def test_base_side_cannot_construct(self):
        side = Side()
        with pytest.raises(NotImplementedError):
            side.make_type(())


class TestAlignedSide:
    def test_identity_permutation_default(self, env):
        side = AlignedSide(env, "list")
        assert side.perm == (0, 1)

    def test_match_constr_requires_full_application(self, env):
        side = AlignedSide(env, "list")
        ctx = Context.empty()
        partial = Constr("list", 1).app(Ind("nat"))
        assert side.match_constr(env, ctx, partial) is None
        full = parse(env, "cons nat 1 (nil nat)")
        match = side.match_constr(env, ctx, full)
        assert match is not None
        j, params, args = match
        assert j == 1 and params == (Ind("nat"),)

    def test_match_elim_reads_params_from_scrutinee(self, env):
        side = AlignedSide(env, "list")
        ctx = Context.empty().push("l", parse(env, "list nat"))
        term = parse(env, "length nat")  # Const, not Elim
        assert side.match_elim(env, ctx, term) is None
        elim = Elim(
            "list",
            Lam("_", parse(env, "list nat"), Ind("nat")),
            (nat_of_int(0), parse(env, "fun (t : nat) (r : list nat) (IH : nat) => S IH")),
            Const("length"),  # type error would surface later; use a var
        )
        # Use a well-typed scrutinee instead:
        elim = Elim(elim.ind, elim.motive, elim.cases, parse(env, "nil nat"))
        match = side.match_elim(env, ctx, elim)
        assert match.params == (Ind("nat"),)

    def test_permuted_make_elim_restores_declaration_order(self, env):
        side = AlignedSide(env, "list", perm=(1, 0))
        match = ElimMatch(
            params=(Ind("nat"),),
            motive=Lam("_", parse(env, "list nat"), Ind("nat")),
            cases=(parse(env, "fun (t : nat) (r : list nat) (IH : nat) => S IH"),
                   nat_of_int(0)),
            scrut=parse(env, "nil nat"),
        )
        built = side.make_elim(match)
        assert isinstance(built, Elim)
        # Dependent case 1 (the common order's nil) lands at declared
        # position 0 under the permutation (1, 0).
        assert built.cases[1] == match.cases[0]


class TestTermSide:
    def test_make_constr_beta_reduces(self, env):
        side = TermSide(
            n_params=0,
            type_fn=Ind("nat"),
            dep_constr=(
                parse(env, "O"),
                parse(env, "fun (n : nat) => S n"),
            ),
            dep_elim=Const("nat_rect"),
            constr_arities=(0, 1),
        )
        built = side.make_constr(1, (), [nat_of_int(3)])
        assert built == nat_of_int(4)

    def test_make_elim_applies_in_convention_order(self, env):
        side = TermSide(
            n_params=0,
            type_fn=Ind("nat"),
            dep_constr=(parse(env, "O"), Constr("nat", 1)),
            dep_elim=Const("nat_rect"),
            constr_arities=(0, 1),
        )
        match = ElimMatch(
            params=(),
            motive=parse(env, "fun (_ : nat) => nat"),
            cases=(nat_of_int(9), parse(env, "fun (p IH : nat) => IH")),
            scrut=nat_of_int(2),
        )
        built = side.make_elim(match)
        assert nf(env, built) == nat_of_int(9)

    def test_default_iota_is_definitional(self, env):
        side = TermSide(
            n_params=0,
            type_fn=Ind("nat"),
            dep_constr=(parse(env, "O"), Constr("nat", 1)),
            dep_elim=Const("nat_rect"),
            constr_arities=(0, 1),
        )
        assert side.make_iota(0, []) is None


class TestMarkedIotaSide:
    def test_marks_are_matched_by_name(self, env_binary):
        from repro.cases.binary import declare_iota_constants

        declare_iota_constants(env_binary)
        side = MarkedIotaSide(
            env_binary, "nat", iota_names=("iota_nat_0", "iota_nat_1")
        )
        ctx = Context.empty()
        term = Const("iota_nat_1").app(nat_of_int(0))
        match = side.match_iota(env_binary, ctx, term)
        assert match == (1, (nat_of_int(0),))

    def test_other_constants_not_matched(self, env_binary):
        side = MarkedIotaSide(
            env_binary, "nat", iota_names=("iota_nat_0", "iota_nat_1")
        )
        ctx = Context.empty()
        assert side.match_iota(env_binary, ctx, Const("add")) is None


class TestReversedLimitations:
    def test_reversing_construct_only_side_cannot_repair(self, env):
        """A reversed ornament configuration has a construct-only A side:
        its unification heuristics match nothing, so the old type is never
        removed and repair reports it (the paper's incomplete-heuristics
        caveat)."""
        from repro.core.repair import RepairError, RepairSession
        from repro.core.search.ornaments import ornament_configuration

        env2 = make_env(lists=True, vectors=True)
        config = ornament_configuration(env2, prove=False).reversed()
        session = RepairSession(env2, config, old_globals=["sigT"])
        env2.define("packed_nil", parse(env2, "ornament.dep_constr_0 nat"))
        with pytest.raises(RepairError):
            session.repair_constant("packed_nil")
