"""Environments, contexts, and the populated-environment invariants."""

import pytest

from repro.kernel import (
    Context,
    EnvError,
    Environment,
    Ind,
    PROP,
    Rel,
    SET,
    TermError,
)
from repro.stdlib.natlib import declare_nat
from repro.stdlib.prelude import declare_prelude
from repro.syntax.parser import parse


class TestEnvironment:
    def test_declaration_order_is_recorded(self):
        env = Environment()
        declare_prelude(env)
        order = env.declaration_order()
        assert order.index("unit") < order.index("eq")

    def test_recursors_are_auto_generated(self):
        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        assert env.has_constant("nat_rect")
        assert env.has_constant("eq_rect")

    def test_duplicate_inductive_rejected(self):
        env = Environment()
        declare_prelude(env)
        with pytest.raises(EnvError):
            declare_prelude(env)

    def test_unknown_lookups_raise(self):
        env = Environment()
        with pytest.raises(EnvError):
            env.constant("missing")
        with pytest.raises(EnvError):
            env.inductive("missing")

    def test_remove_deletes_globals(self):
        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        env.remove("nat")
        env.remove("nat_rect")
        assert not env.has_inductive("nat")
        assert not env.has_constant("nat_rect")

    def test_define_with_wrong_type_rejected(self):
        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        with pytest.raises(TermError):
            env.define(
                "broken",
                parse(env, "S O"),
                type=parse(env, "bool"),
            )

    def test_redefine_replaces_body(self):
        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        env.define("two", parse(env, "2"))
        env.redefine("two", parse(env, "3"), type=Ind("nat"))
        from repro.kernel import nf

        assert nf(env, parse(env, "two")) == parse(env, "3")

    def test_assume_declares_axiom(self):
        env = Environment()
        declare_prelude(env)
        decl = env.assume("some_prop", PROP)
        assert decl.body is None
        assert not decl.unfoldable

    def test_opaque_constants_do_not_unfold(self):
        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        env.define("sealed", parse(env, "2"), opaque=True)
        from repro.kernel import Const, nf

        assert nf(env, Const("sealed")) == Const("sealed")

    def test_checkpoint_rollback_restores_declarations_and_cache(self):
        from repro.kernel import nf

        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        nf(env, parse(env, "S (S O)"))  # populate the reduction cache
        order = env.declaration_order()
        cache_size = env.reduction_cache.size
        mark = env.checkpoint()
        env.define("two", parse(env, "2"))
        env.define("four", parse(env, "4"))
        nf(env, parse(env, "four"))  # cache entries mentioning 'four'
        added = env.rollback(mark)
        assert added == ("two", "four")
        assert not env.has_constant("two")
        assert not env.has_constant("four")
        assert env.declaration_order() == order
        assert env.reduction_cache.size == cache_size
        # The environment is reusable: the same names define cleanly.
        env.define("two", parse(env, "2"))
        assert env.has_constant("two")

    def test_rollback_refused_after_destructive_mutation(self):
        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        env.define("two", parse(env, "2"))
        mark = env.checkpoint()
        env.redefine("two", parse(env, "3"), type=Ind("nat"))
        with pytest.raises(EnvError):
            env.rollback(mark)

    def test_rollback_refused_after_remove(self):
        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        env.define("two", parse(env, "2"))
        mark = env.checkpoint()
        env.remove("two")
        with pytest.raises(EnvError):
            env.rollback(mark)

    def test_rollback_refused_when_checkpoint_is_ahead(self):
        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        env.define("two", parse(env, "2"))
        mark = env.checkpoint()
        fresh = Environment()
        declare_prelude(fresh)
        with pytest.raises(EnvError):
            fresh.rollback(mark)


class TestContext:
    def test_type_of_lifts(self):
        ctx = Context.empty().push("A", SET).push("x", Rel(0))
        # x : A, where A sits one binder below.
        assert ctx.type_of(0) == Rel(1)
        assert ctx.type_of(1) == SET

    def test_out_of_range(self):
        with pytest.raises(TermError):
            Context.empty().type_of(0)

    def test_fresh_name_avoids_collisions(self):
        ctx = Context.empty().push("x", SET).push("x0", SET)
        assert ctx.fresh_name("x") not in ("x", "x0")

    def test_name_of_out_of_range_is_placeholder(self):
        assert Context.empty().name_of(3).startswith("_rel")

    def test_iteration_order_is_innermost_first(self):
        ctx = Context.empty().push("outer", SET).push("inner", SET)
        names = [name for name, _ in ctx]
        assert names == ["inner", "outer"]
