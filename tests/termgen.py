"""Seeded random well-scoped term generator, shared by the fuzz suites.

Extracted from the scope-checker fuzzer so the NbE differential tests
(:mod:`test_kernel_machine`) and the analysis tests draw from the same
distribution: every generated term is well-scoped (all ``Rel`` indices
bound), mentions only stdlib globals (``add``/``pred``/``eq_sym``,
``nat``/``bool``/``eq``), and uses a plain ``random.Random`` so failures
replay from the printed seed.  Terms are *not* necessarily well-typed —
both reduction engines must agree on ill-typed-but-scoped garbage too.

Fuzz loops should draw through :func:`fuzz_terms`, which owns the RNG
and yields a label alongside each term carrying the *explicit seed* and
index — so an assertion that fires deep in a 300-iteration loop names
the exact ``random.Random(seed)`` replay recipe in its message instead
of just an opaque index.
"""

import random

from repro.kernel.term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
)


def fuzz_terms(seed, count, env, depth, binders=0):
    """Yield ``(label, term)`` pairs from an explicitly seeded RNG.

    The label (``seed=<seed> #<i>``) goes into fuzz-test failure
    messages, so a red run is replayable without digging the seed out of
    the test body.
    """
    rng = random.Random(seed)
    for i in range(count):
        yield f"seed={seed} #{i}", random_term(rng, env, depth, binders)


def random_term(rng, env, depth, binders):
    """A random *well-scoped* term with ``binders`` enclosing binders."""
    leaves = ["sort", "const", "ind", "constr"]
    if binders > 0:
        leaves.append("rel")
    if depth <= 0:
        kind = rng.choice(leaves)
    else:
        kind = rng.choice(leaves + ["lam", "pi", "app", "elim"])
    if kind == "rel":
        return Rel(rng.randrange(binders))
    if kind == "sort":
        return Sort(rng.choice([-1, 0, 1, 2]))
    if kind == "const":
        return Const(rng.choice(["add", "pred", "eq_sym"]))
    if kind == "ind":
        return Ind(rng.choice(["nat", "bool", "eq"]))
    if kind == "constr":
        return Constr("nat", rng.randrange(2))
    if kind == "lam":
        return Lam(
            "x",
            random_term(rng, env, depth - 1, binders),
            random_term(rng, env, depth - 1, binders + 1),
        )
    if kind == "pi":
        return Pi(
            "x",
            random_term(rng, env, depth - 1, binders),
            random_term(rng, env, depth - 1, binders + 1),
        )
    if kind == "app":
        return App(
            random_term(rng, env, depth - 1, binders),
            random_term(rng, env, depth - 1, binders),
        )
    # elim over nat: exactly two cases, all parts in scope.
    return Elim(
        "nat",
        random_term(rng, env, depth - 1, binders),
        (
            random_term(rng, env, depth - 1, binders),
            random_term(rng, env, depth - 1, binders),
        ),
        random_term(rng, env, depth - 1, binders),
    )
