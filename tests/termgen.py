"""Seeded random well-scoped term generator, shared by the fuzz suites.

Extracted from the scope-checker fuzzer so the NbE differential tests
(:mod:`test_kernel_machine`) and the analysis tests draw from the same
distribution: every generated term is well-scoped (all ``Rel`` indices
bound), mentions only stdlib globals (``add``/``pred``/``eq_sym``,
``nat``/``bool``/``eq``), and uses a plain ``random.Random`` so failures
replay from the printed seed.  Terms are *not* necessarily well-typed —
both reduction engines must agree on ill-typed-but-scoped garbage too.

Fuzz loops should draw through :func:`fuzz_terms`, which owns the RNG
and yields a label alongside each term carrying the *explicit seed* and
index — so an assertion that fires deep in a 300-iteration loop names
the exact ``random.Random(seed)`` replay recipe in its message instead
of just an opaque index.
"""

import random

from repro.kernel.term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
)


#: The stdlib pools every suite drew from before pools were optional.
DEFAULT_CONSTS = ("add", "pred", "eq_sym")
DEFAULT_INDS = ("nat", "bool", "eq")
DEFAULT_CONSTR_INDS = ("nat",)


def fuzz_terms(
    seed,
    count,
    env,
    depth,
    binders=0,
    consts=DEFAULT_CONSTS,
    inds=DEFAULT_INDS,
    constr_inds=DEFAULT_CONSTR_INDS,
):
    """Yield ``(label, term)`` pairs from an explicitly seeded RNG.

    The label (``seed=<seed> #<i>``) goes into fuzz-test failure
    messages, so a red run is replayable without digging the seed out of
    the test body.

    ``consts``/``inds``/``constr_inds`` override the pools the generator
    draws global names from, so a suite can steer terms toward the types
    a particular configuration matches (e.g. ``list`` for the transformer
    fuzz) without forking the generator; constructor and eliminator
    arities come from ``env``'s declaration of each ``constr_inds`` name.
    """
    rng = random.Random(seed)
    for i in range(count):
        yield f"seed={seed} #{i}", random_term(
            rng,
            env,
            depth,
            binders,
            consts=consts,
            inds=inds,
            constr_inds=constr_inds,
        )


def random_term(
    rng,
    env,
    depth,
    binders,
    consts=DEFAULT_CONSTS,
    inds=DEFAULT_INDS,
    constr_inds=DEFAULT_CONSTR_INDS,
):
    """A random *well-scoped* term with ``binders`` enclosing binders."""

    def recur(d, b):
        return random_term(
            rng, env, d, b, consts=consts, inds=inds, constr_inds=constr_inds
        )

    leaves = ["sort", "const", "ind", "constr"]
    if binders > 0:
        leaves.append("rel")
    if depth <= 0:
        kind = rng.choice(leaves)
    else:
        kind = rng.choice(leaves + ["lam", "pi", "app", "elim"])
    if kind == "rel":
        return Rel(rng.randrange(binders))
    if kind == "sort":
        return Sort(rng.choice([-1, 0, 1, 2]))
    if kind == "const":
        return Const(rng.choice(consts))
    if kind == "ind":
        return Ind(rng.choice(inds))
    if kind == "constr":
        # Single-name pools skip the RNG draw so the default pools
        # reproduce the historical draw sequence exactly.
        name = (
            constr_inds[0]
            if len(constr_inds) == 1
            else rng.choice(constr_inds)
        )
        return Constr(name, rng.randrange(env.inductive(name).n_constructors))
    if kind == "lam":
        return Lam("x", recur(depth - 1, binders), recur(depth - 1, binders + 1))
    if kind == "pi":
        return Pi("x", recur(depth - 1, binders), recur(depth - 1, binders + 1))
    if kind == "app":
        return App(recur(depth - 1, binders), recur(depth - 1, binders))
    # elim: one case per constructor, all parts in scope.
    name = (
        constr_inds[0] if len(constr_inds) == 1 else rng.choice(constr_inds)
    )
    return Elim(
        name,
        recur(depth - 1, binders),
        tuple(
            recur(depth - 1, binders)
            for _ in range(env.inductive(name).n_constructors)
        ),
        recur(depth - 1, binders),
    )
