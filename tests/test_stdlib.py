"""The object-language standard library, validated against Python models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel import Const, Constr, Context, Ind, check, conv, mk_app, nf
from repro.stdlib.natlib import int_of_nat, nat_of_int
from repro.syntax.parser import parse

small_nat = st.integers(min_value=0, max_value=12)


def run(env, source):
    return nf(env, parse(env, source))


class TestNatModel:
    @given(small_nat, small_nat)
    @settings(max_examples=40, deadline=None)
    def test_add_matches_python(self, env_basic, a, b):
        value = nf(env_basic, mk_app(Const("add"), [nat_of_int(a), nat_of_int(b)]))
        assert int_of_nat(value) == a + b

    @given(small_nat, st.integers(min_value=0, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_mul_matches_python(self, env_basic, a, b):
        value = nf(env_basic, mk_app(Const("mul"), [nat_of_int(a), nat_of_int(b)]))
        assert int_of_nat(value) == a * b

    @given(small_nat)
    @settings(max_examples=20, deadline=None)
    def test_pred_matches_python(self, env_basic, a):
        value = nf(env_basic, mk_app(Const("pred"), [nat_of_int(a)]))
        assert int_of_nat(value) == max(0, a - 1)

    def test_numeral_codec_roundtrip(self):
        for k in range(20):
            assert int_of_nat(nat_of_int(k)) == k

    def test_int_of_nat_rejects_non_numerals(self, env_basic):
        with pytest.raises(ValueError):
            int_of_nat(Ind("nat"))

    def test_lemmas_present_and_checked(self, env_basic):
        for name in ["add_n_O", "add_n_Sm", "add_comm", "add_assoc"]:
            decl = env_basic.constant(name)
            check(env_basic, Context.empty(), decl.body, decl.type)


class TestListModel:
    def _mk_list(self, env, values):
        term = parse(env, "nil nat")
        for v in reversed(values):
            term = Constr("list", 1).app(Ind("nat"), nat_of_int(v), term)
        return term

    def _to_list(self, env, term):
        out = []
        term = nf(env, term)
        while True:
            from repro.kernel import unfold_app

            head, args = unfold_app(term)
            if head == Constr("list", 0):
                return out
            assert head == Constr("list", 1)
            out.append(int_of_nat(args[1]))
            term = args[2]

    @given(st.lists(small_nat, max_size=6), st.lists(small_nat, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_app_matches_python(self, env_lists, xs, ys):
        term = Const("app").app(
            Ind("nat"), self._mk_list(env_lists, xs), self._mk_list(env_lists, ys)
        )
        assert self._to_list(env_lists, term) == xs + ys

    @given(st.lists(small_nat, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_rev_matches_python(self, env_lists, xs):
        term = Const("rev").app(Ind("nat"), self._mk_list(env_lists, xs))
        assert self._to_list(env_lists, term) == xs[::-1]

    @given(st.lists(small_nat, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_length_matches_python(self, env_lists, xs):
        term = Const("length").app(Ind("nat"), self._mk_list(env_lists, xs))
        assert int_of_nat(nf(env_lists, term)) == len(xs)

    def test_rev_app_distr_statement(self, env_lists):
        decl = env_lists.constant("rev_app_distr")
        check(env_lists, Context.empty(), decl.body, decl.type)

    def test_zip_with_is_zip_checked(self, env_lists):
        decl = env_lists.constant("zip_with_is_zip")
        check(env_lists, Context.empty(), decl.body, decl.type)


class TestBinaryModel:
    def _n(self, env, k):
        return nf(env, parse(env, f"N.of_nat {k}"))

    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_nadd_matches_python(self, env_binary, a, b):
        total = nf(
            env_binary,
            mk_app(Const("N.add"), [self._n(env_binary, a), self._n(env_binary, b)]),
        )
        assert total == self._n(env_binary, a + b)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_to_nat_of_nat_roundtrip(self, env_binary, a):
        out = nf(env_binary, parse(env_binary, f"N.to_nat (N.of_nat {a})"))
        assert int_of_nat(out) == a

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_succ_matches_python(self, env_binary, a):
        out = nf(
            env_binary, mk_app(Const("N.succ"), [self._n(env_binary, a)])
        )
        assert out == self._n(env_binary, a + 1)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_div2_odd(self, env_binary, a):
        half = nf(env_binary, mk_app(Const("N.div2"), [self._n(env_binary, a)]))
        assert half == self._n(env_binary, a // 2)
        odd = nf(env_binary, mk_app(Const("N.odd"), [self._n(env_binary, a)]))
        expected = "true" if a % 2 else "false"
        assert odd == parse(env_binary, expected)

    def test_peano_rect_succ_checked(self, env_binary):
        for name in ["Pos.peano_rect_succ", "N.peano_rect_succ", "N.add_succ_l"]:
            decl = env_binary.constant(name)
            check(env_binary, Context.empty(), decl.body, decl.type)

    def test_peano_rect_computes(self, env_binary):
        # N.peano_rect behaves like the unary recursor.
        out = nf(
            env_binary,
            parse(
                env_binary,
                "N.peano_rect (fun (_ : N) => nat) O "
                "(fun (m : N) (IH : nat) => S IH) (N.of_nat 6)",
            ),
        )
        assert int_of_nat(out) == 6


class TestBitvectors:
    @given(st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=15))
    @settings(max_examples=25, deadline=None)
    def test_bvadd_is_mod_2n(self, env_full, a, b):
        out = nf(env_full, parse(env_full, f"bvAdd 4 (bvNat 4 {a}) (bvNat 4 {b})"))
        expected = nf(env_full, parse(env_full, f"bvNat 4 {(a + b) % 16}"))
        assert out == expected

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=20, deadline=None)
    def test_bv_to_n_roundtrip(self, env_full, a):
        out = nf(
            env_full,
            parse(env_full, f"bvToN 8 (bvNat 8 {a})"),
        )
        expected = nf(env_full, parse(env_full, f"N.of_nat {a}"))
        assert out == expected

    def test_seq_is_vector(self, env_full):
        assert conv(
            env_full,
            parse(env_full, "seq 2 bool"),
            parse(env_full, "vector bool 2"),
        )


class TestRecords:
    def test_record_projections_compute(self, env_basic):
        from repro.kernel import Environment
        from repro.stdlib import declare_record
        from repro.stdlib.prelude import declare_prelude
        from repro.stdlib.natlib import declare_nat

        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        declare_record(env, "Point", [("px", Ind("nat")), ("py", Ind("nat"))])
        assert int_of_nat(nf(env, parse(env, "px (MkPoint 3 4)"))) == 3
        assert int_of_nat(nf(env, parse(env, "py (MkPoint 3 4)"))) == 4

    def test_record_fields_helper(self):
        from repro.kernel import Environment
        from repro.stdlib import declare_record, record_fields
        from repro.stdlib.prelude import declare_prelude
        from repro.stdlib.natlib import declare_nat

        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        declare_record(env, "Point", [("px", Ind("nat")), ("py", Ind("nat"))])
        fields = record_fields(env, "Point")
        assert [f for f, _ in fields] == ["px", "py"]
