"""The scope & arity checker: true negatives, true positives, and fuzz."""

import pytest

from repro.analysis import check_environment, check_inductive, check_term
from repro.kernel.env import Environment
from repro.kernel.inductive import ConstructorDecl, InductiveDecl
from repro.kernel.term import (
    App,
    Constr,
    Const,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
)
from repro.stdlib import make_env


@pytest.fixture(scope="module")
def env():
    return make_env(lists=True, vectors=True)


class TestTrueNegatives:
    def test_whole_stdlib_is_clean(self, env):
        assert check_environment(env) == []

    def test_closed_constant_body(self, env):
        body = env.constant("rev").body
        assert check_term(env, body) == []

    def test_open_term_under_declared_binders(self, env):
        # Rel(1) is fine when the checker is told two binders enclose it.
        assert check_term(env, Rel(1), depth=2) == []


class TestTruePositives:
    def test_unbound_rel(self, env):
        diags = check_term(env, Lam("x", Sort(0), Rel(1)))
        assert [d.code for d in diags] == ["RA001"]
        assert diags[0].path == ("body",)

    def test_invalid_sort_level(self, env):
        diags = check_term(env, Sort(-2))
        assert [d.code for d in diags] == ["RA002"]

    def test_unknown_constant(self, env):
        diags = check_term(env, Const("no_such_constant"))
        assert [d.code for d in diags] == ["RA003"]

    def test_unknown_inductive(self, env):
        diags = check_term(env, Ind("no_such_type"))
        assert [d.code for d in diags] == ["RA004"]

    def test_constructor_index_out_of_range(self, env):
        diags = check_term(env, Constr("nat", 7))
        assert [d.code for d in diags] == ["RA005"]

    def test_elim_with_dropped_case(self, env):
        # nat has two constructors; an Elim with one case is malformed.
        full = Elim(
            "nat",
            Lam("n", Ind("nat"), Ind("nat")),
            (Constr("nat", 0), Lam("n", Ind("nat"), Rel(0))),
            Constr("nat", 0),
        )
        assert check_term(env, full) == []
        dropped = Elim("nat", full.motive, full.cases[:1], full.scrut)
        assert "RA006" in [d.code for d in check_term(env, dropped)]

    def test_result_index_count_mismatch(self, env):
        # A hand-built (undeclared) family whose constructor supplies no
        # index for a one-index family.
        decl = InductiveDecl(
            name="Bad.indexed",
            params=(),
            indices=(("n", Ind("nat")),),
            sort=Sort(0),
            constructors=(
                ConstructorDecl("mk", args=(), result_indices=()),
            ),
        )
        diags = check_inductive(env, decl)
        assert "RA007" in [d.code for d in diags]

    def test_error_in_environment_sweep(self):
        bad = Environment()
        bad.assume("dangling", App(Const("loose"), Sort(0)), check=False)
        diags = check_environment(bad)
        assert "RA003" in [d.code for d in diags]
        assert diags[0].subject == "dangling"


# -- Seeded fuzzing (stdlib random only) -------------------------------------


# The generator lives in termgen so the NbE differential fuzzer shares it.
from tests.termgen import fuzz_terms  # noqa: E402


def bump_first_rel(term, binders=0):
    """Make the first ``Rel`` found out of scope; None when there is none."""
    if isinstance(term, Rel):
        return Rel(term.index + binders + 1)
    if isinstance(term, App):
        fn = bump_first_rel(term.fn, binders)
        if fn is not None:
            return App(fn, term.arg)
        arg = bump_first_rel(term.arg, binders)
        return App(term.fn, arg) if arg is not None else None
    if isinstance(term, Lam):
        domain = bump_first_rel(term.domain, binders)
        if domain is not None:
            return Lam(term.name, domain, term.body)
        body = bump_first_rel(term.body, binders + 1)
        return Lam(term.name, term.domain, body) if body is not None else None
    if isinstance(term, Pi):
        domain = bump_first_rel(term.domain, binders)
        if domain is not None:
            return Pi(term.name, domain, term.codomain)
        codomain = bump_first_rel(term.codomain, binders + 1)
        if codomain is not None:
            return Pi(term.name, term.domain, codomain)
        return None
    if isinstance(term, Elim):
        motive = bump_first_rel(term.motive, binders)
        if motive is not None:
            return Elim(term.ind, motive, term.cases, term.scrut)
        for j, case in enumerate(term.cases):
            mutated = bump_first_rel(case, binders)
            if mutated is not None:
                cases = (
                    term.cases[:j] + (mutated,) + term.cases[j + 1 :]
                )
                return Elim(term.ind, term.motive, cases, term.scrut)
        scrut = bump_first_rel(term.scrut, binders)
        if scrut is not None:
            return Elim(term.ind, term.motive, term.cases, scrut)
        return None
    return None


def drop_first_elim_case(term):
    """Drop the last case of the first ``Elim`` found; None when none."""
    if isinstance(term, Elim):
        return Elim(term.ind, term.motive, term.cases[:-1], term.scrut)
    if isinstance(term, App):
        fn = drop_first_elim_case(term.fn)
        if fn is not None:
            return App(fn, term.arg)
        arg = drop_first_elim_case(term.arg)
        return App(term.fn, arg) if arg is not None else None
    if isinstance(term, (Lam, Pi)):
        inner = "body" if isinstance(term, Lam) else "codomain"
        domain = drop_first_elim_case(term.domain)
        if domain is not None:
            return type(term)(term.name, domain, getattr(term, inner))
        sub = drop_first_elim_case(getattr(term, inner))
        if sub is not None:
            return type(term)(term.name, term.domain, sub)
        return None
    return None


class TestFuzz:
    def test_generated_terms_are_accepted(self, env):
        for label, term in fuzz_terms(20260805, 200, env, depth=4):
            assert check_term(env, term) == [], label

    def test_off_by_one_rel_is_rejected(self, env):
        mutated_count = 0
        for label, term in fuzz_terms(20260806, 300, env, depth=4):
            mutated = bump_first_rel(term)
            if mutated is None:
                continue
            mutated_count += 1
            codes = [d.code for d in check_term(env, mutated)]
            assert "RA001" in codes, (label, term, mutated)
        assert mutated_count >= 50

    def test_dropped_elim_case_is_rejected(self, env):
        mutated_count = 0
        for label, term in fuzz_terms(20260807, 300, env, depth=4):
            mutated = drop_first_elim_case(term)
            if mutated is None:
                continue
            mutated_count += 1
            codes = [d.code for d in check_term(env, mutated)]
            assert "RA006" in codes, (label, term, mutated)
        assert mutated_count >= 50
