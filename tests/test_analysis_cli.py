"""The ``python -m repro.analysis`` sweep."""

import json

import pytest

from repro.analysis.cli import CASES, main, run_target
from repro.analysis.diagnostics import Diagnostic, Report, Severity


class TestMain:
    def test_json_sweep_of_quickstart_is_clean(self, capsys):
        assert main(["--json", "--case", "quickstart"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document["targets"]) == {"quickstart"}
        assert document["targets"]["quickstart"]["summary"]["error"] == 0
        assert document["summary"]["error"] == 0

    def test_stdlib_sweep_is_clean(self, capsys):
        assert main(["--case", "stdlib"]) == 0
        out = capsys.readouterr().out
        assert "== stdlib ==" in out
        assert "0 error(s)" in out

    def test_case_names_cover_every_case_study(self):
        assert set(CASES) == {
            "stdlib",
            "quickstart",
            "replica",
            "binary",
            "ornaments",
            "galois",
            "constr_refactor",
        }


class TestRunTarget:
    def test_quickstart_report_shape(self):
        report = run_target("quickstart")
        assert not report.has_errors
        document = report.to_dict()
        assert {"diagnostics", "summary"} <= set(document)


class TestSelectIgnore:
    """``--select``/``--ignore`` filters and the JSON exit classification.

    The committed case studies analyze clean, so these run against a
    stubbed target report with one error and one info diagnostic.
    """

    @pytest.fixture(autouse=True)
    def synthetic_target(self, monkeypatch):
        def fake_run_target(name):
            report = Report()
            report.add(
                Diagnostic(
                    code="RA101",
                    severity=Severity.ERROR,
                    message="residual",
                    subject="t",
                )
            )
            report.add(
                Diagnostic(
                    code="RA401",
                    severity=Severity.INFO,
                    message="unaffected",
                    subject="t",
                )
            )
            return report

        monkeypatch.setattr(
            "repro.analysis.cli.run_target", fake_run_target
        )

    def _document(self, capsys, *argv):
        code = main(["--json", "--case", "quickstart", *argv])
        return code, json.loads(capsys.readouterr().out)

    def test_unfiltered_errors_classify_the_exit(self, capsys):
        code, document = self._document(capsys)
        assert code == 1 and document["exit_code"] == 1
        diags = document["targets"]["quickstart"]["diagnostics"]
        assert [(d["code"], d["exit_error"]) for d in diags] == [
            ("RA101", True),
            ("RA401", False),
        ]

    def test_select_keeps_only_named_codes(self, capsys):
        code, document = self._document(capsys, "--select", "RA401")
        assert code == 0 and document["exit_code"] == 0
        diags = document["targets"]["quickstart"]["diagnostics"]
        assert [d["code"] for d in diags] == ["RA401"]
        assert document["summary"]["error"] == 0

    def test_ignore_drops_named_codes(self, capsys):
        code, document = self._document(capsys, "--ignore", "RA101")
        assert code == 0
        diags = document["targets"]["quickstart"]["diagnostics"]
        assert [d["code"] for d in diags] == ["RA401"]

    def test_select_and_ignore_compose(self, capsys):
        code, document = self._document(
            capsys, "--select", "RA101", "--select", "RA401",
            "--ignore", "RA101",
        )
        assert code == 0
        diags = document["targets"]["quickstart"]["diagnostics"]
        assert [d["code"] for d in diags] == ["RA401"]

    def test_unknown_code_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--select", "RA999"])
        assert "unknown diagnostic code" in capsys.readouterr().err

    def test_text_mode_applies_the_filters_too(self, capsys):
        assert main(["--case", "quickstart", "--ignore", "RA101"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
