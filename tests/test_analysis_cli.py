"""The ``python -m repro.analysis`` sweep."""

import json

from repro.analysis.cli import CASES, main, run_target


class TestMain:
    def test_json_sweep_of_quickstart_is_clean(self, capsys):
        assert main(["--json", "--case", "quickstart"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document["targets"]) == {"quickstart"}
        assert document["targets"]["quickstart"]["summary"]["error"] == 0
        assert document["summary"]["error"] == 0

    def test_stdlib_sweep_is_clean(self, capsys):
        assert main(["--case", "stdlib"]) == 0
        out = capsys.readouterr().out
        assert "== stdlib ==" in out
        assert "0 error(s)" in out

    def test_case_names_cover_every_case_study(self):
        assert set(CASES) == {
            "stdlib",
            "quickstart",
            "replica",
            "binary",
            "ornaments",
            "galois",
            "constr_refactor",
        }


class TestRunTarget:
    def test_quickstart_report_shape(self):
        report = run_target("quickstart")
        assert not report.has_errors
        document = report.to_dict()
        assert {"diagnostics", "summary"} <= set(document)
