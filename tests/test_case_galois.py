"""Section 6.4 end to end: tuples to records and back (Figure 17)."""

from repro.kernel import Context, check, mentions_global, nf, pretty
from repro.syntax.parser import parse


class TestForwardDirection:
    def test_cork_ported_to_records(self, galois_scenario):
        s = galois_scenario
        rendered = pretty(s.cork_result.type, env=s.env)
        assert rendered == "Record.Connection -> Record.Connection"

    def test_cork_body_uses_record_vocabulary(self, galois_scenario):
        s = galois_scenario
        body = pretty(s.cork_result.term, env=s.env)
        assert "MkConnection" in body
        assert "corked" in body
        assert "bvAdd" in body
        # No tuple projections remain.
        assert "fst" not in body
        assert "snd" not in body

    def test_cork_increments_corked_field(self, galois_scenario):
        env = galois_scenario.env
        out = nf(
            env,
            parse(
                env,
                """
                corked (Record.cork (MkConnection true (bvNat 2 0)
                  (bvNat 8 0) (MkHandshake (bvNat 32 0) (bvNat 32 0))
                  false false (bvNat 32 0) false false))
                """,
            ),
        )
        assert out == nf(env, parse(env, "bvNat 2 1"))


class TestRecordProof:
    def test_cork_lemma_checks(self, galois_scenario):
        env = galois_scenario.env
        decl = env.constant("Record.corkLemma")
        check(env, Context.empty(), decl.body, decl.type)


class TestBackwardDirection:
    def test_lemma_ported_back_to_tuples(self, galois_scenario):
        s = galois_scenario
        ty = s.cork_lemma_tuple.type
        assert not mentions_global(ty, "Record.Connection")
        assert not mentions_global(ty, "Record.Handshake")
        assert mentions_global(ty, "Galois.Connection")

    def test_statement_uses_projection_chains(self, galois_scenario):
        # The paper's ported statement: fst (snd c) = bvNat 2 0 -> ...
        s = galois_scenario
        rendered = pretty(s.cork_lemma_tuple.type, env=s.env)
        assert "fst" in rendered
        assert "snd" in rendered
        assert "cork c" in rendered

    def test_ported_proof_checks(self, galois_scenario):
        s = galois_scenario
        check(s.env, Context.empty(), s.cork_lemma_tuple.term, s.cork_lemma_tuple.type)


class TestEquivalences:
    def test_both_equivalences_proved(self, galois_scenario):
        from repro.kernel import typecheck_closed

        s = galois_scenario
        for config in (s.handshake_config, s.connection_config):
            typecheck_closed(s.env, config.equivalence.section)
            typecheck_closed(s.env, config.equivalence.retraction)
            config.check(s.env)

    def test_nested_tuple_shape(self, galois_scenario):
        # Connection has nine fields (Figure 17).
        assert len(galois_scenario.connection_config.a.fields) == 9
