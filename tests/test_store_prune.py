"""Bounded result-store retention: LRU pruning, pins, and the env knob.

The store may be capped (``max_entries`` / ``$REPRO_SERVICE_STORE_MAX``)
with least-recently-used eviction.  The load-bearing invariant: pruning
must never evict a record an in-flight batch holds a reference to — the
scheduler pins every batch key for the batch's duration.
"""

import os
import time

from repro.service import BatchOptions, run_batch
from repro.service.job import SCHEMA_VERSION, fingerprint_source
from repro.service.job import RepairJob
from repro.service.scheduler import inprocess_runner
from repro.service.store import (
    ResultStore,
    STORE_MAX_ENV_VAR,
    default_max_entries,
)

QUICKSTART_SETUP = "repro.service.cases:quickstart_env"


def _record(key):
    return {
        "schema_version": SCHEMA_VERSION,
        "key": key,
        "result": {"status": "ok", "name": key},
    }


def _age(store, key, seconds_ago):
    """Backdate a record's mtime so LRU ordering is deterministic."""
    stamp = time.time() - seconds_ago
    os.utime(store.path_for(key), (stamp, stamp))


def _quickstart_job(**kwargs):
    spec = dict(
        name="quickstart/rev_app_distr",
        setup=QUICKSTART_SETUP,
        target="rev_app_distr",
        config={"kind": "auto", "a": "list", "b": "New.list"},
        old=("list",),
        rename={"kind": "prefix", "value": "New."},
        env_fingerprint=fingerprint_source(QUICKSTART_SETUP),
    )
    spec.update(kwargs)
    return RepairJob(**spec)


class TestMaxEntries:
    def test_unbounded_by_default(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.max_entries is None
        for i in range(20):
            store.put(f"key{i}", _record(f"key{i}"))
        assert store.size == 20
        assert store.evictions == 0

    def test_put_evicts_oldest_first(self, tmp_path):
        store = ResultStore(str(tmp_path), max_entries=2)
        store.put("old", _record("old"))
        _age(store, "old", 300)
        store.put("mid", _record("mid"))
        _age(store, "mid", 200)
        store.put("new", _record("new"))
        assert store.size == 2
        assert store.evictions == 1
        assert store.get("old") is None  # the LRU record went
        assert store.get("mid") is not None
        assert store.get("new") is not None

    def test_get_refreshes_recency(self, tmp_path):
        store = ResultStore(str(tmp_path), max_entries=2)
        store.put("a", _record("a"))
        _age(store, "a", 300)
        store.put("b", _record("b"))
        _age(store, "b", 200)
        # A hit on "a" freshens it; the next eviction takes "b".
        assert store.get("a") is not None
        store.put("c", _record("c"))
        assert store.get("a") is not None
        assert not os.path.exists(store.path_for("b"))

    def test_non_positive_bound_means_unbounded(self, tmp_path):
        for bound in (0, -5):
            store = ResultStore(str(tmp_path), max_entries=bound)
            assert store.max_entries is None

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_MAX_ENV_VAR, "7")
        assert default_max_entries() == 7
        assert ResultStore(str(tmp_path)).max_entries == 7
        # An explicit argument beats the environment.
        assert ResultStore(str(tmp_path), max_entries=3).max_entries == 3
        monkeypatch.setenv(STORE_MAX_ENV_VAR, "0")
        assert default_max_entries() is None
        monkeypatch.setenv(STORE_MAX_ENV_VAR, "not-a-number")
        assert default_max_entries() is None
        monkeypatch.delenv(STORE_MAX_ENV_VAR)
        assert default_max_entries() is None

    def test_tempfiles_and_foreign_files_ignored(self, tmp_path):
        store = ResultStore(str(tmp_path), max_entries=2)
        (tmp_path / ".tmp_leftover.json").write_text("{}")
        (tmp_path / "README.txt").write_text("not a record")
        store.put("a", _record("a"))
        store.put("b", _record("b"))
        assert store.evictions == 0
        assert store.size == 2


class TestPins:
    def test_pinned_keys_survive_pruning(self, tmp_path):
        store = ResultStore(str(tmp_path), max_entries=1)
        store.put("keep", _record("keep"))
        _age(store, "keep", 600)
        with store.pin(["keep"]):
            store.put("fresh", _record("fresh"))
            # "keep" is the LRU record but pinned; "fresh" has to go
            # even though it was just written — the bound holds by
            # evicting the oldest *unpinned* record.
            assert store.get("keep") is not None
        assert store.pinned() == []

    def test_pins_are_refcounted(self, tmp_path):
        store = ResultStore(str(tmp_path), max_entries=1)
        with store.pin(["shared"]):
            with store.pin(["shared"]):
                assert store.pinned() == ["shared"]
            # The inner release must not drop the outer batch's pin.
            assert store.pinned() == ["shared"]
        assert store.pinned() == []

    def test_release_after_pin_allows_eviction(self, tmp_path):
        store = ResultStore(str(tmp_path), max_entries=1)
        store.put("old", _record("old"))
        _age(store, "old", 600)
        with store.pin(["old"]):
            pass
        store.put("new", _record("new"))
        assert store.get("old") is None
        assert store.get("new") is not None


class TestSchedulerIntegration:
    def test_batch_pins_its_keys_for_the_whole_run(self, tmp_path):
        """A cap of 1 cannot evict either record of a 2-job batch.

        ``run_batch`` pins every job key before the first worker runs,
        so the second job's ``put`` skips the first job's record even
        though it is the oldest unpinned-looking entry on disk.
        """
        store = ResultStore(str(tmp_path), max_entries=1)
        jobs = [
            _quickstart_job(),
            _quickstart_job(name="quickstart/rev", target="rev"),
        ]
        report = run_batch(
            jobs,
            BatchOptions(jobs=1, store=store),
            runner=inprocess_runner(),
        )
        assert report.counts.get("ok") == 2
        # Both records survived the batch despite max_entries=1 ...
        assert store.size == 2
        assert store.evictions == 0
        assert store.pinned() == []  # ... and the pins were released.
        # The next unrelated put enforces the bound again.
        store.put("later", _record("later"))
        assert store.size == 1
