"""Static analysis is boot-path independent: snapshot == scratch.

Warm-started workers analyze environments restored via
``Environment.from_parts`` from a snapshot pack, while everything else
builds them by re-running the setup script.  Both boots must be
invisible to the analysis layer: for every six-case-batch environment,
the change-impact plan and the residual sweep over a snapshot-booted
environment are identical — digest for digest, diagnostic for
diagnostic — to the scratch ones.
"""

import pytest

from repro.analysis.impact import _six_case_setups, build_plan
from repro.analysis.residual import find_residuals
from repro.kernel.snapshot import (
    build_pack_from_refs,
    decode_pack,
    encode_pack,
)
from repro.service.worker import build_environment

SETUPS = _six_case_setups()


def _pair(setup):
    """(scratch env, snapshot-booted env) for one setup reference."""
    scratch = build_environment(setup)
    pack = decode_pack(encode_pack(build_pack_from_refs([setup])))
    return scratch, pack.get(setup).build_env()


def _residual_sweep(env, old, allow):
    """Every residual diagnostic over every constant body, rendered."""
    out = []
    for name in env.declaration_order():
        if env.has_inductive(name):
            continue
        decl = env.constant(name)
        if decl.body is None:
            continue
        out.extend(
            d.to_dict()
            for d in find_residuals(
                env,
                decl.body,
                old,
                allow=frozenset(allow),
                subject=name,
            )
        )
    return out


def test_six_case_setups_are_the_expected_shape():
    assert len(SETUPS) >= 6
    for setup, old, allow in SETUPS:
        assert ":" in setup
        assert old


@pytest.mark.parametrize(
    "setup,old,allow", SETUPS, ids=[s[0].split(":")[-1] for s in SETUPS]
)
def test_snapshot_booted_analysis_matches_scratch(setup, old, allow):
    scratch, warm = _pair(setup)
    assert warm.declaration_order() == scratch.declaration_order()
    scratch_plan = build_plan(scratch, old, allow, fingerprint="parity")
    warm_plan = build_plan(warm, old, allow, fingerprint="parity")
    assert warm_plan.digest == scratch_plan.digest
    assert warm_plan.to_dict() == scratch_plan.to_dict()
    assert _residual_sweep(warm, old, allow) == _residual_sweep(
        scratch, old, allow
    )
