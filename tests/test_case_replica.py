"""Section 6.1 end to end: the REPLICA benchmark and its variants."""

from repro.kernel import mentions_global, nf
from repro.stdlib.natlib import int_of_nat
from repro.syntax.parser import parse


class TestVariants:
    def test_all_five_variants_succeed(self, replica_variants):
        assert len(replica_variants) == 5
        for variant in replica_variants:
            assert len(variant.results) == 2

    def test_theorem_repaired_in_every_variant(self, replica_variants):
        for variant in replica_variants:
            theorem = next(
                r for r in variant.results
                if r.old_name == "eval_eq_true_or_false"
            )
            assert not mentions_global(theorem.type, "Old.Term")
            assert mentions_global(theorem.type, variant.new_type)

    def test_figure_16_swap_mapping(self, replica_variants):
        fig16 = replica_variants[0]
        # Int and Eq (positions 1 and 2) swap; everything else fixed.
        assert fig16.mapping == (0, 2, 1, 3, 4, 5, 6)

    def test_rename_all_keeps_positions(self, replica_variants):
        renamed = replica_variants[2]
        assert renamed.mapping == tuple(range(7))

    def test_permute_and_rename(self, replica_variants):
        combined = replica_variants[4]
        assert combined.mapping == (0, 2, 1, 5, 4, 3, 6)


class TestSemanticsPreserved:
    def test_eval_behaviour(self):
        # Rebuild a small scenario to exercise computation.
        from repro.cases.replica import (
            declare_term_language,
            run_variant,
            setup_environment,
        )

        env = setup_environment()
        variant = run_variant(
            env,
            "fig16",
            ["Var", "Eq", "Int", "Plus", "Times", "Minus", "Choose"],
            {},
            9,
        )
        logic = "MkLogic 1 0"
        environment = "(fun (i : Identifier) => O)"
        out = nf(
            env,
            parse(
                env,
                f"New9.eval ({logic}) {environment} "
                f"(New9.Term.Eq (New9.Term.Int 2) (New9.Term.Int 2))",
            ),
        )
        assert int_of_nat(out) == 1  # vTrue
        out = nf(
            env,
            parse(
                env,
                f"New9.eval ({logic}) {environment} "
                f"(New9.Term.Plus (New9.Term.Int 2) (New9.Term.Int 3))",
            ),
        )
        assert int_of_nat(out) == 5


class TestProofsCheck:
    def test_every_repaired_constant_is_recorded(self, replica_variants):
        # RepairSession kernel-checks every result before defining it;
        # here we confirm the artifacts are present and named as expected.
        for variant in replica_variants:
            for result in variant.results:
                assert result.term is not None
                assert result.new_name.endswith(result.old_name)
