"""The tactic engine and every tactic, including failure modes."""

import pytest

from repro.kernel import Context, check
from repro.syntax.parser import parse
from repro.tactics import Proof, TacticError, prove
from repro.tactics.tactics import (
    apply,
    assumption,
    auto,
    change,
    constructor,
    destruct,
    discriminate,
    elim_using,
    exists_,
    first,
    induction,
    intro,
    intros,
    left,
    reflexivity,
    rewrite,
    right,
    split,
    symmetry,
    trivial,
    try_,
)


class TestEngine:
    def test_prove_returns_checked_term(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat n n")
        term = prove(env_basic, stmt, intro("n"), reflexivity())
        check(env_basic, Context.empty(), term, stmt)

    def test_qed_requires_completion(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat n n")
        proof = Proof(env_basic, stmt)
        proof.run(intro("n"))
        with pytest.raises(TacticError):
            proof.qed()

    def test_show_renders_goal(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat n n")
        proof = Proof(env_basic, stmt)
        proof.run(intro("n"))
        rendered = proof.show()
        assert "n : nat" in rendered
        assert "eq nat n n" in rendered

    def test_focus_next_rotates(self, env_basic):
        stmt = parse(
            env_basic, "and (eq nat O O) (eq nat 1 1)"
        )
        proof = Proof(env_basic, stmt)
        proof.run(split())
        first_goal = proof.focused
        proof.focus_next()
        assert proof.focused != first_goal

    def test_statement_must_be_a_type(self, env_basic):
        with pytest.raises(Exception):
            Proof(env_basic, parse(env_basic, "S O"))


class TestIntro:
    def test_intro_names_hypothesis(self, env_basic):
        stmt = parse(env_basic, "nat -> nat -> nat")
        proof = Proof(env_basic, stmt)
        proof.run(intro("a"))
        assert proof.focused.ctx.name_of(0) == "a"

    def test_intro_freshens_duplicates(self, env_basic):
        stmt = parse(env_basic, "nat -> nat -> nat")
        proof = Proof(env_basic, stmt)
        proof.run(intro("a"))
        proof.run(intro("a"))
        names = proof.focused.hypothesis_names()
        assert len(set(names)) == 2

    def test_intro_fails_on_non_product(self, env_basic):
        proof = Proof(env_basic, parse(env_basic, "eq nat O O"))
        with pytest.raises(TacticError):
            proof.run(intro())

    def test_intros_all(self, env_basic):
        stmt = parse(env_basic, "forall (a b c : nat), eq nat a a")
        proof = Proof(env_basic, stmt)
        proof.run(intros())
        assert len(proof.focused.ctx) == 3

    def test_intros_unfolds_definitions(self, env_basic):
        # The goal's product may be hidden behind a constant.
        stmt = parse(env_basic, "forall (a : nat), eq nat (pred (S a)) a")
        prove(env_basic, stmt, intros("a"), reflexivity())


class TestEqualityTactics:
    def test_symmetry(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat (add n 0) n")
        prove(
            env_basic, stmt, intro("n"), symmetry(),
            rewrite("add_n_O n"), reflexivity(),
        )

    def test_rewrite_forward_and_backward(self, env_basic):
        stmt = parse(
            env_basic,
            "forall (x y : nat), eq nat x y -> eq nat (S x) (S y)",
        )
        prove(env_basic, stmt, intros(), rewrite("H"), reflexivity())
        prove(env_basic, stmt, intros(), rewrite("H", rev=True), reflexivity())

    def test_rewrite_requires_equality_proof(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat n n")
        proof = Proof(env_basic, stmt)
        proof.run(intro("n"))
        with pytest.raises(TacticError):
            proof.run(rewrite("n"))

    def test_rewrite_nothing_to_rewrite(self, env_basic):
        stmt = parse(
            env_basic,
            "forall (x y : nat), eq nat x y -> eq nat O O",
        )
        proof = Proof(env_basic, stmt)
        proof.run(intros())
        with pytest.raises(TacticError):
            proof.run(rewrite("H"))

    def test_reflexivity_conversion(self, env_basic):
        stmt = parse(env_basic, "eq nat (add 2 3) 5")
        prove(env_basic, stmt, reflexivity())

    def test_reflexivity_rejects_unequal(self, env_basic):
        proof = Proof(env_basic, parse(env_basic, "eq nat 1 2"))
        with pytest.raises(TacticError):
            proof.run(reflexivity())


class TestApply:
    def test_apply_generates_premise_subgoals(self, env_basic):
        stmt = parse(
            env_basic,
            "forall (x y z : nat), eq nat x y -> eq nat y z -> eq nat x z",
        )
        prove(
            env_basic, stmt, intros(),
            apply("eq_trans nat x y z"), assumption(), assumption(),
        )

    def test_apply_infers_from_conclusion(self, env_basic):
        stmt = parse(env_basic, "forall (x y : nat), eq nat x y -> eq nat y x")
        prove(env_basic, stmt, intros(), apply("eq_sym"), assumption())

    def test_apply_higher_order_decomposition(self, env_basic):
        stmt = parse(
            env_basic,
            "forall (x y : nat) (f : nat -> nat), "
            "eq nat x y -> eq nat (f x) (f y)",
        )
        prove(env_basic, stmt, intros(), apply("f_equal nat nat"), assumption())

    def test_apply_mismatched_conclusion_fails(self, env_basic):
        proof = Proof(env_basic, parse(env_basic, "eq nat O O"))
        with pytest.raises(TacticError):
            proof.run(apply("conj"))


class TestStructural:
    def test_split_left_right(self, env_basic):
        stmt = parse(
            env_basic,
            "and (eq nat O O) (or (eq nat 1 2) (eq nat 1 1))",
        )
        prove(
            env_basic, stmt,
            split(), reflexivity(), right(), reflexivity(),
        )

    def test_exists(self, env_basic):
        stmt = parse(env_basic, "sigT nat (fun (n : nat) => eq nat (S n) 3)")
        prove(env_basic, stmt, exists_("2"), reflexivity())

    def test_constructor_picks_first_match(self, env_basic):
        stmt = parse(env_basic, "or (eq nat O O) (eq nat O 1)")
        prove(env_basic, stmt, constructor(), reflexivity())

    def test_change_converts_goal(self, env_basic):
        stmt = parse(env_basic, "eq nat (add 1 1) 2")
        prove(env_basic, stmt, change("eq nat 2 2"), reflexivity())

    def test_change_rejects_non_convertible(self, env_basic):
        proof = Proof(env_basic, parse(env_basic, "eq nat (add 1 1) 2"))
        with pytest.raises(TacticError):
            proof.run(change("eq nat 3 3"))


class TestInduction:
    def test_simple_induction(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat (add O n) n")
        prove(env_basic, stmt, intro("n"), reflexivity())

    def test_induction_generates_ih(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat (add n O) n")
        proof = Proof(env_basic, stmt)
        proof.run(intro("n"))
        proof.run(induction("n", names=[[], ["p", "IHp"]]))
        assert len(proof.goals) == 2
        proof.run(reflexivity())
        assert "IHp" in proof.focused.hypothesis_names()

    def test_indexed_induction_on_vector(self, env_lists):
        stmt = parse(
            env_lists,
            """
            forall (T : Type1) (n : nat) (v : vector T n),
              eq nat n n
            """,
        )
        prove(
            env_lists, stmt, intros("T", "n", "v"),
            induction("v", names=[[], ["t", "m", "w", "IHw"]]),
            reflexivity(), reflexivity(),
        )

    def test_indexed_induction_requires_variable_indices(self, env_lists):
        stmt = parse(
            env_lists,
            "forall (T : Type1) (v : vector T 2), eq nat 2 2",
        )
        proof = Proof(env_lists, stmt)
        proof.run(intros("T", "v"))
        with pytest.raises(TacticError):
            proof.run(induction("v"))

    def test_destruct_non_variable_scrutinee(self, env_basic):
        stmt = parse(
            env_basic,
            "forall (b : bool), or (eq bool (negb b) true) "
            "(eq bool (negb b) false)",
        )
        prove(
            env_basic, stmt, intro("b"),
            destruct("negb b"),
            left(), reflexivity(), right(), reflexivity(),
        )

    def test_elim_using_custom_eliminator(self, env_binary):
        stmt = parse(env_binary, "forall (n : N), eq N (N.add N0 n) n")
        prove(
            env_binary, stmt, intro("n"),
            elim_using("N.peano_rect", "n"),
            reflexivity(),
            intros("m", "IH"),
            reflexivity(),
        )


class TestDiscriminate:
    def test_discriminate_closes_goal(self, env_basic):
        stmt = parse(
            env_basic, "forall (x : nat), eq nat (S x) O -> eq nat 1 2"
        )
        prove(env_basic, stmt, intros("x", "H"), discriminate("H"))

    def test_discriminate_rejects_same_constructor(self, env_basic):
        stmt = parse(
            env_basic, "forall (x : nat), eq nat (S x) (S x) -> eq nat 1 2"
        )
        proof = Proof(env_basic, stmt)
        proof.run(intros("x", "H"))
        with pytest.raises(TacticError):
            proof.run(discriminate("H"))


class TestAutomation:
    def test_assumption(self, env_basic):
        stmt = parse(env_basic, "forall (P : Prop), P -> P")
        prove(env_basic, stmt, intros(), assumption())

    def test_auto_tries_hypotheses(self, env_basic):
        stmt = parse(
            env_basic,
            "forall (P Q : Prop), (P -> Q) -> P -> Q",
        )
        prove(env_basic, stmt, intros(), auto())

    def test_trivial_is_auto(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat n n")
        prove(env_basic, stmt, intro("n"), trivial())

    def test_try_swallows_failure(self, env_basic):
        stmt = parse(env_basic, "forall (n : nat), eq nat n n")
        prove(env_basic, stmt, intro("n"), try_(split()), reflexivity())

    def test_first_reports_all_failures(self, env_basic):
        proof = Proof(env_basic, parse(env_basic, "eq nat 1 2"))
        with pytest.raises(TacticError):
            proof.run(first(reflexivity(), assumption()))
