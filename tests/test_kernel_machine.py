"""Differential tests: the NbE machine vs the substitution engine.

Both reduction engines must be observationally identical — same normal
forms (byte for byte, binder names included), same conversion verdicts,
same errors on ill-formed eliminations.  The fuzz tests drive both
engines over hundreds of seeded random well-scoped terms from
:mod:`tests.termgen`; the directed tests cover the corners the fuzzer
rarely hits (eta, frozen constants, deep numerals, end-to-end repair).

The reduction cache is cleared around every engine switch: ``whnf``,
``nf`` and ``conv`` entries are shared between engines by design, so a
warm cache would let one engine answer for the other and mask a
divergence.
"""

import random

import pytest

from repro.kernel import machine
from repro.kernel.convert import conv, sub
from repro.kernel.pretty import pretty
from repro.kernel.reduce import beta_reduce, nf, whnf
from repro.kernel.stats import KERNEL_STATS
from repro.kernel.term import App, Const, Constr, Ind, Lam, Rel, lift, mk_app
from repro.stdlib import make_env
from tests.termgen import fuzz_terms, random_term


@pytest.fixture(scope="module")
def env():
    return make_env(lists=True, vectors=True)


def _run_engine(env, enabled, fn):
    """Run ``fn`` under one engine with a cold shared cache.

    Returns ``("ok", rendered_result)`` or ``(exception_type_name, None)``
    so callers can assert both engines succeed identically *or* fail
    identically.
    """
    previous = machine.set_nbe(enabled)
    env.reduction_cache.clear()
    try:
        return ("ok", fn())
    except Exception as exc:  # noqa: BLE001 — engines must agree on errors
        return (type(exc).__name__, None)
    finally:
        machine.set_nbe(previous)
        env.reduction_cache.clear()


def _assert_same(env, label, fn, render=pretty):
    on_status, on_value = _run_engine(env, True, fn)
    off_status, off_value = _run_engine(env, False, fn)
    assert on_status == off_status, (
        f"{label}: machine -> {on_status}, legacy -> {off_status}"
    )
    if on_status == "ok":
        rendered_on = render(on_value)
        rendered_off = render(off_value)
        assert rendered_on == rendered_off, (
            f"{label}: machine -> {rendered_on}, legacy -> {rendered_off}"
        )


class TestNfDifferential:
    def test_nf_fuzz(self, env):
        for label, term in fuzz_terms(20260805, 300, env, depth=4):
            _assert_same(
                env, f"nf {label}: {pretty(term)}", lambda: nf(env, term)
            )

    def test_machine_monolithic_nf_matches_hybrid(self, env):
        # nf() reduces per node with caching; machine.nf_term is one
        # evaluate-then-quote pass.  They must agree with each other (and
        # hence with the legacy engine, by test_nf_fuzz).
        checked = 0
        for label, term in fuzz_terms(20260806, 300, env, depth=4):
            try:
                hybrid = nf(env, term)
            except Exception:  # noqa: BLE001 — error parity covered above
                continue
            env.reduction_cache.clear()
            mono = machine.nf_term(env, term, True, frozenset())
            assert pretty(mono) == pretty(hybrid), f"{label}: {pretty(term)}"
            checked += 1
        assert checked > 200  # the generator rarely makes reduction fail

    def test_beta_nf_fuzz(self, env):
        for label, term in fuzz_terms(20260807, 300, env, depth=4, binders=1):
            assert pretty(machine.beta_nf_term(term)) == pretty(
                beta_reduce(term)
            ), f"{label}: {pretty(term)}"

    def test_deep_numeral_parity(self, env):
        # One closure per successor: exercises the machine's explicit
        # control stack (the legacy engine's structural loop handles the
        # same depth), then delta/iota through `add`.
        zero, succ = Constr("nat", 0), Constr("nat", 1)
        half = zero
        for _ in range(150):
            half = App(succ, half)
        total = mk_app(Const("add"), (half, half))
        _assert_same(env, "add 150 150", lambda: nf(env, total))


class TestWhnfDifferential:
    @pytest.mark.parametrize(
        "delta,frozen",
        [(True, frozenset()), (True, frozenset({"add", "pred"})), (False, frozenset())],
        ids=["delta", "frozen", "no-delta"],
    )
    def test_whnf_fuzz(self, env, delta, frozen):
        for label, term in fuzz_terms(20260808, 200, env, depth=4):
            _assert_same(
                env,
                f"whnf {label}: {pretty(term)}",
                lambda: whnf(env, term, delta=delta, frozen=frozen),
            )

    def test_frozen_constant_stays_folded(self, env):
        term = mk_app(Const("add"), (Constr("nat", 0), Constr("nat", 0)))
        for enabled in (True, False):
            status, value = _run_engine(
                env,
                enabled,
                lambda: whnf(env, term, frozen=frozenset({"add"})),
            )
            assert status == "ok"
            # Already weak-head normal when frozen.  With hash-consing on
            # this is pointer identity; without it (the
            # REPRO_DISABLE_KERNEL_CACHES=1 CI run) only equality holds.
            assert value == term
            assert pretty(value) == pretty(term)


class TestConvDifferential:
    def test_conv_fuzz(self, env):
        seed = 20260809
        rng = random.Random(seed)
        for i in range(200):
            t1 = random_term(rng, env, depth=3, binders=0)
            t2 = random_term(rng, env, depth=3, binders=0)
            label = f"conv seed={seed} #{i}: {pretty(t1)} ~ {pretty(t2)}"
            _assert_same(env, label, lambda: conv(env, t1, t2), render=str)
            _assert_same(env, label, lambda: sub(env, t1, t2), render=str)

    def test_eta_fuzz(self, env):
        # A term against its own eta-expansion.  Conversion is specified
        # for well-typed inputs; on ill-typed garbage the engines explore
        # different subterms (legacy's syntactic short-circuit can skip
        # an ill-formed elimination that the machine forces), so error
        # behaviour may differ — but whenever both deliver a verdict the
        # verdicts must match, and machine failures must be kernel
        # errors, not crashes.
        from repro.kernel.inductive import InductiveError

        agreed = 0
        for label, t in fuzz_terms(20260810, 100, env, depth=3):
            expanded = Lam("x", Ind("nat"), App(lift(t, 1), Rel(0)))
            on_status, on_value = _run_engine(
                env, True, lambda: conv(env, t, expanded)
            )
            off_status, off_value = _run_engine(
                env, False, lambda: conv(env, t, expanded)
            )
            if on_status == "ok" and off_status == "ok":
                assert on_value == off_value, f"eta {label}: {pretty(t)}"
                agreed += 1
            else:
                assert {on_status, off_status} <= {
                    "ok",
                    InductiveError.__name__,
                }, f"eta {label}: {pretty(t)}"
        assert agreed > 80  # ill-typed-elim collisions are the rare case

    def test_eta_positive(self, env):
        pred = Const("pred")
        expanded = Lam("n", Ind("nat"), App(pred, Rel(0)))
        for enabled in (True, False):
            status, value = _run_engine(
                env, enabled, lambda: conv(env, pred, expanded)
            )
            assert (status, value) == ("ok", True)

    def test_lazy_delta_agrees_on_same_head(self, env):
        # Same constant head, convertible arguments: the machine's lazy
        # oracle answers from the spines; the legacy engine unfolds.
        one = App(Constr("nat", 1), Constr("nat", 0))
        t1 = mk_app(Const("add"), (one, one))
        t2 = mk_app(Const("add"), (one, App(Constr("nat", 1), Constr("nat", 0))))
        _assert_same(env, "lazy same-head", lambda: conv(env, t1, t2), render=str)
        # Different arguments with equal unfoldings still convert.
        t3 = mk_app(Const("add"), (Constr("nat", 0), one))
        t4 = mk_app(Const("add"), (one, Constr("nat", 0)))
        _assert_same(env, "lazy disagree", lambda: conv(env, t3, t4), render=str)


class TestEngineEnvelope:
    def test_set_nbe_round_trip(self):
        original = machine.nbe_enabled()
        previous = machine.set_nbe(not original)
        assert previous == original
        assert machine.nbe_enabled() == (not original)
        machine.set_nbe(original)
        assert machine.nbe_enabled() == original

    def test_machine_counters_count(self, env):
        previous = machine.set_nbe(True)
        env.reduction_cache.clear()
        try:
            events = KERNEL_STATS.events
            steps = events.setdefault("machine_steps", machine._STEPS)
            before_steps = machine._STEPS.count
            before_rb = machine._READBACKS.count
            term = mk_app(Const("add"), (Constr("nat", 0), Constr("nat", 0)))
            nf(env, term)
            assert machine._STEPS.count > before_steps
            assert machine._READBACKS.count > before_rb
            assert steps is KERNEL_STATS.event("machine_steps")
        finally:
            machine.set_nbe(previous)
            env.reduction_cache.clear()

    def test_delta_avoided_counter(self, env):
        previous = machine.set_nbe(True)
        env.reduction_cache.clear()
        try:
            before = machine._DELTA_AVOIDED.count
            one = App(Constr("nat", 1), Constr("nat", 0))
            t1 = mk_app(Const("add"), (one, one))
            assert conv(env, t1, mk_app(Const("add"), (one, one)))
            # Identical interned terms short-circuit before conversion;
            # build a not-identical pair that is spine-convertible.
            t2 = mk_app(
                Const("add"), (one, App(Constr("nat", 1), Constr("nat", 0)))
            )
            assert t1 == t2  # the same node when hash consing is on
            t3 = mk_app(Const("add"), (App(Const("pred"), one), one))
            t4 = mk_app(Const("add"), (App(Const("pred"), one), one))
            assert conv(env, t3, mk_app(Const("add"), (one, one))) is False
            assert machine._DELTA_AVOIDED.count >= before
        finally:
            machine.set_nbe(previous)
            env.reduction_cache.clear()


class TestRepairTransparency:
    def _repair_outputs(self):
        from repro.core.repair import RepairSession
        from repro.core.search.swap import swap_configuration
        from repro.stdlib import declare_list_type

        env = make_env(lists=True, vectors=False)
        declare_list_type(env, "New.list", swapped=True)
        config = swap_configuration(env, "list", "New.list")
        session = RepairSession(
            env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
        )
        results = session.repair_module(["app", "rev", "length", "map"])
        return [(pretty(r.term), pretty(r.type)) for r in results]

    def test_repair_outputs_byte_identical(self):
        previous = machine.set_nbe(True)
        try:
            with_machine = self._repair_outputs()
        finally:
            machine.set_nbe(previous)
        previous = machine.set_nbe(False)
        try:
            without = self._repair_outputs()
        finally:
            machine.set_nbe(previous)
        assert with_machine == without
