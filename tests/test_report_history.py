"""The bench report ``history`` trend: append, cap, and survive garbage."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

import report_schema  # noqa: E402


def _report(wall=0.5):
    return report_schema.make_report(
        "unit", {"phase/a": {"wall_time_s": wall, "count": 1}}
    )


class TestHistory:
    def test_first_write_starts_history(self, tmp_path):
        path = str(tmp_path / "BENCH_unit.json")
        report_schema.write_report(path, _report(0.5))
        on_disk = json.loads(Path(path).read_text())
        assert len(on_disk["history"]) == 1
        entry = on_disk["history"][0]
        assert entry["timestamp"] == on_disk["timestamp"]
        assert entry["git_sha"] == on_disk["git_sha"]
        assert entry["phases"] == {"phase/a": 0.5}

    def test_rewrite_appends_newest_last(self, tmp_path):
        path = str(tmp_path / "BENCH_unit.json")
        report_schema.write_report(path, _report(0.5))
        report_schema.write_report(path, _report(0.25))
        history = json.loads(Path(path).read_text())["history"]
        assert [e["phases"]["phase/a"] for e in history] == [0.5, 0.25]

    def test_cap_drops_oldest(self, tmp_path, monkeypatch):
        monkeypatch.setattr(report_schema, "HISTORY_LIMIT", 3)
        path = str(tmp_path / "BENCH_unit.json")
        for wall in (0.4, 0.3, 0.2, 0.1):
            report_schema.write_report(path, _report(wall))
        history = json.loads(Path(path).read_text())["history"]
        assert [e["phases"]["phase/a"] for e in history] == [0.3, 0.2, 0.1]

    def test_malformed_prior_file_restarts_trend(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        path.write_text("{ not json")
        report_schema.write_report(str(path), _report())
        assert len(json.loads(path.read_text())["history"]) == 1

    def test_caller_supplied_history_wins(self, tmp_path):
        path = str(tmp_path / "BENCH_unit.json")
        report = _report()
        report["history"] = []
        report_schema.write_report(path, report)
        assert json.loads(Path(path).read_text())["history"] == []

    def test_validation_rejects_bad_history(self, tmp_path):
        report = _report()
        report["history"] = [{"timestamp": 3}]
        with pytest.raises(report_schema.ReportError):
            report_schema.write_report(str(tmp_path / "x.json"), report)


class TestPoolWidthFields:
    """Service-batch phases record pool width as ``jobs``/``workers``."""

    def test_valid_pool_fields_pass(self):
        report = _report()
        report["phases"]["phase/a"].update(jobs=4, workers=2)
        assert report_schema.validate_report(report) == []

    @pytest.mark.parametrize("field", ["jobs", "workers"])
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", True])
    def test_bad_pool_fields_rejected(self, field, bad):
        report = _report()
        report["phases"]["phase/a"][field] = bad
        errors = report_schema.validate_report(report)
        assert any(field in e and "positive int" in e for e in errors)

    def test_omitted_pool_fields_stay_valid(self):
        assert report_schema.validate_report(_report()) == []
