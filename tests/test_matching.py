"""First-order matching (the apply tactic's unifier) in isolation."""

import pytest

from repro.kernel import Rel, unfold_pis
from repro.syntax.parser import parse, parse_in
from repro.tactics.matching import (
    MatchFailure,
    instantiate_pattern,
    match_conclusion,
)
from repro.stdlib.natlib import nat_of_int


def conclusion_of(env, source):
    """Pi telescope + conclusion of a statement, as (pattern, n_vars)."""
    term = parse(env, source)
    binders, conclusion = unfold_pis(term)
    return conclusion, len(binders)


class TestBasicMatching:
    def test_assigns_pattern_variables(self, env_basic):
        pattern, n = conclusion_of(
            env_basic, "forall (x y : nat), eq nat x y"
        )
        target = parse(env_basic, "eq nat 1 2")
        assign = match_conclusion(env_basic, pattern, n, target)
        assert assign[1] == nat_of_int(1)  # x is the outer binder
        assert assign[0] == nat_of_int(2)

    def test_conflicting_assignment_fails(self, env_basic):
        pattern, n = conclusion_of(env_basic, "forall (x : nat), eq nat x x")
        target = parse(env_basic, "eq nat 1 2")
        with pytest.raises(MatchFailure):
            match_conclusion(env_basic, pattern, n, target)

    def test_conflict_resolved_by_conversion(self, env_basic):
        pattern, n = conclusion_of(env_basic, "forall (x : nat), eq nat x x")
        target = parse(env_basic, "eq nat (add 1 1) 2")
        assign = match_conclusion(env_basic, pattern, n, target)
        assert 0 in assign

    def test_reduction_exposes_structure(self, env_basic):
        pattern, n = conclusion_of(env_basic, "forall (x : nat), eq nat (S x) 2")
        # The target hides the S under a beta redex.
        target = parse(env_basic, "eq nat ((fun (k : nat) => S k) 1) 2")
        assign = match_conclusion(env_basic, pattern, n, target)
        assert assign[0] == nat_of_int(1)

    def test_mismatched_heads_fail(self, env_basic):
        pattern, n = conclusion_of(env_basic, "forall (x : nat), eq nat x x")
        target = parse(env_basic, "and (eq nat 1 1) (eq nat 2 2)")
        with pytest.raises(MatchFailure):
            match_conclusion(env_basic, pattern, n, target)


class TestHigherOrder:
    def test_rigid_decomposition(self, env_basic):
        # f x =~ g y decomposes when arities agree.
        pattern, n = conclusion_of(
            env_basic,
            "forall (f : nat -> nat) (x : nat), eq nat (f x) (f x)",
        )
        target = parse_in(env_basic, "eq nat (g 1) (g 1)", ("g",))
        assign = match_conclusion(env_basic, pattern, n, target)
        assert assign[1] == Rel(0)  # f := g
        assert assign[0] == nat_of_int(1)

    def test_assigned_head_checked_by_conversion(self, env_basic):
        pattern, n = conclusion_of(
            env_basic,
            "forall (f : nat -> nat), eq nat (f 1) (f 1)",
        )
        target = parse(env_basic, "eq nat (S 1) (S 1)")
        assign = match_conclusion(env_basic, pattern, n, target)
        assert 0 in assign


class TestScoping:
    def test_local_capture_is_rejected(self, env_basic):
        # A pattern variable cannot be assigned a term mentioning a
        # binder local to the match position: matching
        # ``forall x, eq nat ?y x`` against ``forall x, eq nat (S x) x``
        # would need ?y := S x, which escapes its scope.
        pattern = parse_in(env_basic, "forall (x : nat), eq nat y x", ("y",))
        target = parse(env_basic, "forall (x : nat), eq nat (S x) x")
        with pytest.raises(MatchFailure):
            match_conclusion(env_basic, pattern, 1, target)

    def test_instantiate_pattern_requires_full_assignment(self, env_basic):
        pattern, n = conclusion_of(env_basic, "forall (x : nat), eq nat x x")
        with pytest.raises(MatchFailure):
            instantiate_pattern(pattern, {}, n)

    def test_instantiate_pattern_shifts_ambient(self, env_basic):
        pattern, n = conclusion_of(env_basic, "forall (x : nat), eq nat x x")
        out = instantiate_pattern(pattern, {0: nat_of_int(4)}, n)
        assert out == parse(env_basic, "eq nat 4 4")
