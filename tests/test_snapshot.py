"""Snapshot packs: round-trips, zero-rebuild restore, and worker boots.

Three contracts, in order of severity:

* **Fidelity** — a pack round-trips its environments exactly: same
  declarations, arena-identical terms (under hash consing), and the
  serializable reduction-cache families restored so they *hit*.
* **Zero rebuild** — :meth:`SnapshotEntry.build_env` performs no
  elaboration, pinned on :data:`~repro.kernel.stats.KERNEL_STATS`: the
  ``infer``/``check``/``conv``/``whnf``/``nf`` counters must not move.
* **Refuse, don't crash** — corrupted or version-bumped packs raise
  :class:`SnapshotError`; a stale or missing pack routes
  :func:`~repro.service.worker.boot_environment` to a scratch boot.

The committed golden fixture (``tests/fixtures/golden_snapshot_v*.bin``)
pins the on-disk format across interpreter versions: the CI matrix
decodes bytes written on 3.11 from every supported Python.
"""

import json
import os
import random

import pytest

from repro.kernel.codec import FORMAT_VERSION, MAGIC, SnapshotError
from repro.kernel.env import EnvError, Environment
from repro.kernel.snapshot import (
    SIX_CASE_SETUPS,
    build_pack_from_refs,
    clear_pack_cache,
    decode_pack,
    encode_pack,
    load_snapshot,
    load_snapshot_cached,
    main as snapshot_main,
    save_snapshot,
)
from repro.kernel.stats import KERNEL_STATS
from repro.kernel.term import hash_consing_enabled
from repro.stdlib import make_env
from tests.fixtures.make_golden import (
    GOLDEN_FINGERPRINT,
    GOLDEN_KEY,
    golden_bytes,
    tiny_env,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "fixtures",
    f"golden_snapshot_v{FORMAT_VERSION}.bin",
)

#: The KernelStats tables that must stay still during a snapshot boot.
ELABORATION_TABLES = ("infer", "check", "conv", "whnf", "nf")


def _elaboration_counts():
    return {
        name: (
            KERNEL_STATS.counter(name).hits,
            KERNEL_STATS.counter(name).misses,
        )
        for name in ELABORATION_TABLES
    }


def _pack_bytes(env, key="test:env", fingerprint="fp"):
    return encode_pack({key: (env, fingerprint)})


@pytest.fixture(autouse=True)
def _fresh_pack_cache():
    clear_pack_cache()
    yield
    clear_pack_cache()


# -- Round-trip fidelity ------------------------------------------------------


class TestPackRoundTrip:
    def test_declarations_survive(self):
        env = make_env(lists=False, vectors=False)
        pack = decode_pack(_pack_bytes(env))
        restored = pack.get("test:env").build_env()
        assert restored.declaration_order() == env.declaration_order()
        for name in env.declaration_order():
            if env.has_inductive(name):
                assert restored.inductive(name) == env.inductive(name)
            else:
                old, new = env.constant(name), restored.constant(name)
                assert new.type == old.type
                assert new.body == old.body
                assert new.opaque == old.opaque

    def test_terms_are_arena_identical(self):
        if not hash_consing_enabled():
            pytest.skip("interning disabled: arena identity not expected")
        env = make_env(lists=False, vectors=False)
        restored = decode_pack(_pack_bytes(env)).get("test:env").build_env()
        for name in env.declaration_order():
            if not env.has_inductive(name):
                assert restored.constant(name).type is env.constant(name).type

    def test_multiple_envs_share_one_node_table(self):
        env = make_env(lists=False, vectors=False)
        one = len(decode_pack(_pack_bytes(env)).entries)
        data = encode_pack(
            {
                "a": (env, "fp-a"),
                "b": (env, "fp-b"),
            }
        )
        pack = decode_pack(data)
        assert one == 1 and pack.keys() == ("a", "b")
        # The second entry adds only its directory row + body, never a
        # second copy of the shared term table.
        assert len(data) < 2 * len(_pack_bytes(env))

    def test_reencode_is_byte_stable(self):
        env = make_env(lists=False, vectors=False)
        data = _pack_bytes(env)
        entry = decode_pack(data).get("test:env")
        assert _pack_bytes(entry.build_env()) == data

    def test_each_build_env_is_a_fresh_environment(self):
        entry = decode_pack(_pack_bytes(tiny_env())).get("test:env")
        first, second = entry.build_env(), entry.build_env()
        assert first is not second
        first.assume("extra", first.constant("id_nat").type)
        assert not second.has_constant("extra")


class TestZeroRebuild:
    def test_build_env_does_no_elaboration(self):
        env = make_env(lists=False, vectors=False)
        data = _pack_bytes(env)
        before = _elaboration_counts()
        restored = decode_pack(data).get("test:env").build_env()
        assert _elaboration_counts() == before
        assert restored.declaration_order() == env.declaration_order()

    def test_cache_entries_restore_and_hit(self):
        from repro.kernel.stats import CACHES_DISABLED_BY_ENV

        if CACHES_DISABLED_BY_ENV:
            pytest.skip("reduction cache disabled: nothing to restore")
        env = make_env(lists=False, vectors=False)
        from repro.kernel.context import Context
        from repro.kernel.reduce import nf
        from repro.kernel.typecheck import infer

        # Warm the source cache so the pack has entries to carry.
        ctx = Context()
        for name in ("add", "pred"):
            infer(env, ctx, env.constant(name).type)
            nf(env, env.constant(name).type)
        serializable = sum(
            1
            for key in env.reduction_cache._store
            if isinstance(key, tuple)
            and key
            and key[0] in ("whnf", "nf", "conv", "infer", "check")
        )
        assert serializable > 0
        restored = decode_pack(_pack_bytes(env)).get("test:env").build_env()
        assert len(restored.reduction_cache._store) == serializable
        # The restored entries answer live lookups: an infer over a
        # cached term is a pure hit, no new misses.
        before = KERNEL_STATS.counter("infer").misses
        infer(restored, ctx, restored.constant("add").type)
        assert KERNEL_STATS.counter("infer").misses == before

    def test_cache_disabled_env_restores_without_cache(self):
        entry = decode_pack(_pack_bytes(tiny_env())).get("test:env")
        assert not entry.cache_enabled
        assert not entry.build_env().reduction_cache.enabled


# -- The golden fixture -------------------------------------------------------


class TestGoldenFixture:
    def test_committed_bytes_decode(self):
        with open(GOLDEN_PATH, "rb") as handle:
            data = handle.read()
        pack = decode_pack(data)
        entry = pack.get(GOLDEN_KEY)
        assert entry is not None
        assert entry.fingerprint == GOLDEN_FINGERPRINT
        env = entry.build_env()
        assert env.declaration_order() == (
            "nat",
            "nat_rect",
            "zero",
            "one",
            "pred",
            "id_nat",
            "nat_is_set",
        )

    def test_generator_reproduces_committed_bytes(self):
        """Regenerating the fixture must be a no-op between format bumps."""
        if not hash_consing_enabled():
            # The node table mirrors arena sharing; without interning
            # the generator legitimately writes duplicate subterms.
            pytest.skip("interning disabled: node-table layout differs")
        with open(GOLDEN_PATH, "rb") as handle:
            assert handle.read() == golden_bytes()

    def test_reencoding_the_decoded_env_reproduces_the_bytes(self):
        with open(GOLDEN_PATH, "rb") as handle:
            data = handle.read()
        entry = decode_pack(data).get(GOLDEN_KEY)
        assert (
            encode_pack({GOLDEN_KEY: (entry.build_env(), GOLDEN_FINGERPRINT)})
            == data
        )

    def test_bumped_format_version_is_refused(self):
        data = bytearray(golden_bytes())
        assert data[: len(MAGIC)] == MAGIC
        # The uvarint version sits right after the magic; v1 is one byte.
        assert data[len(MAGIC)] == FORMAT_VERSION == 1
        data[len(MAGIC)] = FORMAT_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            decode_pack(bytes(data))


# -- Corruption ---------------------------------------------------------------


class TestPackCorruption:
    def test_every_truncation_refused(self):
        data = golden_bytes()
        for cut in range(len(data)):
            with pytest.raises(SnapshotError):
                decode_pack(data[:cut])

    def test_trailing_garbage_refused(self):
        with pytest.raises(SnapshotError, match="trailing"):
            decode_pack(golden_bytes() + b"\x00")

    def test_fuzz_flipped_bytes(self):
        """Any single-bit corruption either decodes or raises SnapshotError."""
        data = golden_bytes()
        rng = random.Random(0xC0DEC)
        for _ in range(300):
            mutated = bytearray(data)
            index = rng.randrange(len(mutated))
            mutated[index] ^= 1 << rng.randrange(8)
            try:
                pack = decode_pack(bytes(mutated))
                for key in pack.keys():
                    entry = pack.entries[key]
                    entry.decls, entry.cache_entries
            except SnapshotError:
                pass  # refused cleanly
            # Any other exception propagates and fails the test.

    def test_non_bytes_input(self):
        with pytest.raises(SnapshotError, match="bytes"):
            decode_pack({"not": "bytes"})  # type: ignore[arg-type]

    def test_term_stream_is_not_a_pack(self):
        from repro.kernel.codec import encode_term
        from repro.kernel.term import Sort

        with pytest.raises(SnapshotError, match="kind"):
            decode_pack(encode_term(Sort(0)))

    def test_from_parts_rejects_duplicates_and_junk(self):
        decl = tiny_env().constant("zero")
        with pytest.raises(EnvError, match="duplicate"):
            Environment.from_parts([decl, decl])
        with pytest.raises(EnvError, match="from_parts"):
            Environment.from_parts(["zero"])


# -- File I/O and the CLI -----------------------------------------------------


class TestSnapshotFiles:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "env.snap")
        size = save_snapshot(path, {"k": (tiny_env(), "fp")})
        assert os.path.getsize(path) == size
        pack = load_snapshot(path)
        assert pack.keys() == ("k",)
        assert not [p for p in os.listdir(tmp_path) if ".tmp." in p]

    def test_missing_file_is_a_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(str(tmp_path / "absent.snap"))
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot_cached(str(tmp_path / "absent.snap"))

    def test_cached_load_decodes_once_per_file_version(self, tmp_path):
        path = str(tmp_path / "env.snap")
        save_snapshot(path, {"k": (tiny_env(), "fp")})
        first = load_snapshot_cached(path)
        assert load_snapshot_cached(path) is first
        # A rewrite (new mtime/size) invalidates the cached pack.
        save_snapshot(path, {"k2": (tiny_env(), "fp2")})
        os.utime(path, ns=(1, 1))
        assert load_snapshot_cached(path).keys() == ("k2",)

    def test_cli_build_and_inspect(self, tmp_path, capsys):
        path = str(tmp_path / "stdlib.snap")
        assert snapshot_main([path, "--setup", "repro.stdlib:make_env"]) == 0
        out = capsys.readouterr().out
        assert "1 environment(s)" in out
        assert snapshot_main(["--inspect", path]) == 0
        out = capsys.readouterr().out
        assert "repro.stdlib:make_env" in out

    def test_cli_usage_and_failure_paths(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            snapshot_main([str(tmp_path / "x.snap")])  # no setups
        with pytest.raises(SystemExit):
            snapshot_main(["--setup", "repro.stdlib:make_env"])  # no output
        assert (
            snapshot_main(
                [str(tmp_path / "x.snap"), "--setup", "no.such:mod"]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err

    def test_six_case_setups_resolve(self):
        # The CLI's --six-cases list must track the service's cases.
        from repro.service.cases import six_case_jobs

        assert set(SIX_CASE_SETUPS) == {
            job.setup for job in six_case_jobs()
        }


# -- Worker boots -------------------------------------------------------------


STDLIB_REF = "repro.stdlib:make_env"


class TestWorkerBoot:
    def test_boot_prefers_a_fresh_snapshot(self, tmp_path):
        from repro.service.worker import boot_environment

        path = str(tmp_path / "boot.snap")
        save_snapshot(path, build_pack_from_refs([STDLIB_REF]))
        env, boot = boot_environment(STDLIB_REF, snapshot=path)
        assert boot == "snapshot"
        assert env.has_constant("add")

    def test_stale_fingerprint_falls_back_to_scratch(self, tmp_path):
        from repro.service.worker import boot_environment

        path = str(tmp_path / "stale.snap")
        save_snapshot(path, {STDLIB_REF: (make_env(), "stale-fingerprint")})
        env, boot = boot_environment(STDLIB_REF, snapshot=path)
        assert boot == "scratch"
        assert env.has_constant("add")

    def test_missing_or_corrupt_pack_falls_back_to_scratch(self, tmp_path):
        from repro.service.worker import boot_environment

        _env, boot = boot_environment(
            STDLIB_REF, snapshot=str(tmp_path / "absent.snap")
        )
        assert boot == "scratch"
        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"garbage, not a pack")
        _env, boot = boot_environment(STDLIB_REF, snapshot=str(bad))
        assert boot == "scratch"

    def test_env_var_names_the_default_snapshot(self, tmp_path, monkeypatch):
        from repro.service.worker import SNAPSHOT_ENV_VAR, boot_environment

        path = str(tmp_path / "envvar.snap")
        save_snapshot(path, build_pack_from_refs([STDLIB_REF]))
        monkeypatch.setenv(SNAPSHOT_ENV_VAR, path)
        _env, boot = boot_environment(STDLIB_REF)
        assert boot == "snapshot"

    def test_snapshot_boot_repairs_identically(self, tmp_path):
        """The KernelStats-gated contract: a snapshot-booted job does
        zero environment re-elaboration and produces a byte-identical
        record."""
        from repro.service.cases import six_case_jobs
        from repro.service.job import result_digest
        from repro.service.worker import execute_job

        job = next(
            j
            for j in six_case_jobs()
            if j.name == "quickstart/rev_app_distr"
        )
        path = str(tmp_path / "case.snap")
        save_snapshot(path, build_pack_from_refs([job.setup]))
        payload = job.payload()
        scratch = execute_job(dict(payload))
        before = _elaboration_counts()
        load_snapshot_cached(path).get(job.setup).build_env()
        assert _elaboration_counts() == before, (
            "snapshot boot re-elaborated the environment"
        )
        warm = execute_job(dict(payload), snapshot=path)
        assert scratch["env_boot"] == "scratch"
        assert warm["env_boot"] == "snapshot"
        assert result_digest(scratch) == result_digest(warm)
        assert json.dumps(
            {
                k: v
                for k, v in warm.items()
                if k not in ("wall_time_s", "kernel_delta", "env_boot")
            },
            sort_keys=True,
        ) == json.dumps(
            {
                k: v
                for k, v in scratch.items()
                if k not in ("wall_time_s", "kernel_delta", "env_boot")
            },
            sort_keys=True,
        )


# -- Batch warm-up ------------------------------------------------------------


class TestWarmup:
    def _jobs(self):
        from repro.service.cases import six_case_jobs

        return [
            j for j in six_case_jobs() if j.name.startswith("quickstart/")
        ]

    def test_batch_setups_dedups_and_skips_live(self):
        from repro.service.job import LIVE_SETUP, RepairJob
        from repro.service.warmup import batch_setups

        jobs = self._jobs() + [
            RepairJob(
                name="live/x",
                setup=LIVE_SETUP,
                target="t",
                config={"kind": "live"},
                old=("o",),
            )
        ]
        setups = batch_setups(jobs)
        assert setups == ["repro.service.cases:quickstart_env"]

    def test_ensure_builds_then_reuses(self, tmp_path):
        from repro.service.warmup import ensure_batch_snapshot

        jobs = self._jobs()
        path = str(tmp_path / "batch.snap")
        assert ensure_batch_snapshot(jobs, path) == path
        stamp = os.stat(path).st_mtime_ns
        clear_pack_cache()
        ensure_batch_snapshot(jobs, path)
        assert os.stat(path).st_mtime_ns == stamp  # reused, not rewritten

    def test_ensure_rebuilds_a_corrupt_pack(self, tmp_path):
        from repro.service.warmup import ensure_batch_snapshot

        jobs = self._jobs()
        path = tmp_path / "batch.snap"
        path.write_bytes(b"definitely not a pack")
        ensure_batch_snapshot(jobs, str(path))
        assert load_snapshot(str(path)).get(jobs[0].setup) is not None

    def test_ensure_rebuilds_on_stale_fingerprint(self, tmp_path):
        from repro.service.warmup import ensure_batch_snapshot

        jobs = self._jobs()
        path = str(tmp_path / "batch.snap")
        save_snapshot(path, {jobs[0].setup: (make_env(), "stale")})
        clear_pack_cache()
        ensure_batch_snapshot(jobs, path)
        entry = load_snapshot(path).get(jobs[0].setup)
        assert entry.fingerprint != "stale"


class TestBatchByteIdentity:
    def test_six_case_batch_is_byte_identical_scratch_vs_snapshot(
        self, tmp_path
    ):
        """The tentpole gate: the full six-case batch produces identical
        repair output whether workers boot from scratch or a snapshot."""
        from repro.service.cases import six_case_jobs
        from repro.service.scheduler import BatchOptions, run_batch
        from repro.service.warmup import ensure_batch_snapshot

        jobs = six_case_jobs()
        path = str(tmp_path / "six.snap")
        ensure_batch_snapshot(jobs, path)
        scratch = run_batch(jobs, BatchOptions(jobs=1), batch="scratch")
        warm = run_batch(
            jobs, BatchOptions(jobs=1, snapshot=path), batch="warm"
        )
        assert scratch.ok and warm.ok
        for cold, hot in zip(scratch.outcomes, warm.outcomes):
            assert cold.job.name == hot.job.name
            assert cold.result["env_boot"] == "scratch"
            assert hot.result["env_boot"] == "snapshot", hot.job.name
            cold_dict, hot_dict = cold.to_dict(), hot.to_dict()
            assert (
                cold_dict["result_digest"] == hot_dict["result_digest"]
            ), cold.job.name
