"""Tests for the kernel performance layers (Section 4.4 engineering).

Covers the hash-consing arena, the cached free-variable bounds, the
memoized de Bruijn operations, the environment-scoped reduction cache,
and — most importantly — that every layer is behaviour-transparent:
with all switches off the kernel produces syntactically identical
results.
"""

import pytest
from hypothesis import given, settings

from repro.kernel.env import Environment
from repro.kernel.reduce import nf, whnf
from repro.kernel.stats import KERNEL_STATS
from repro.kernel.term import (
    App,
    Const,
    Elim,
    Lam,
    Pi,
    Rel,
    SET,
    Sort,
    TermError,
    free_rels,
    hash_consing_enabled,
    lift,
    max_free_rel,
    set_hash_consing,
    set_term_memo,
    subst,
    subst_many,
)

from .test_kernel_term import terms


@pytest.fixture
def no_kernel_caches():
    """Temporarily disable interning and the de Bruijn memo tables."""
    prev_intern = set_hash_consing(False)
    prev_memo = set_term_memo(False)
    yield
    set_hash_consing(prev_intern)
    set_term_memo(prev_memo)


@pytest.fixture
def kernel_caches_on():
    """Force every layer on — for tests asserting cache-active behaviour.

    Needed so the suite also passes under REPRO_DISABLE_KERNEL_CACHES=1,
    where the layers default to off.
    """
    from repro.kernel.env import set_reduction_cache_default

    prev_intern = set_hash_consing(True)
    prev_memo = set_term_memo(True)
    prev_cache = set_reduction_cache_default(True)
    yield
    set_hash_consing(prev_intern)
    set_term_memo(prev_memo)
    set_reduction_cache_default(prev_cache)


# ---------------------------------------------------------------------------
# Hash consing
# ---------------------------------------------------------------------------


class TestInterning:
    def test_structural_equality_is_identity(self, kernel_caches_on):
        assert App(Const("a"), Const("b")) is App(Const("a"), Const("b"))
        assert Rel(7) is Rel(7)
        assert Sort(3) is Sort(3)
        assert Lam("x", SET, Rel(0)) is Lam("x", SET, Rel(0))
        assert Pi("x", SET, SET) is Pi("x", SET, SET)
        assert Elim("n", Rel(0), (Const("a"),), Rel(1)) is Elim(
            "n", Rel(0), (Const("a"),), Rel(1)
        )

    def test_display_names_are_preserved(self):
        # The intern key includes binder names, so sharing never changes
        # how a term pretty-prints (equality still ignores names).
        lx = Lam("x", SET, Rel(0))
        ly = Lam("y", SET, Rel(0))
        assert lx == ly
        assert lx is not ly
        assert lx.name == "x" and ly.name == "y"

    def test_elim_cases_normalized_to_tuple(self, kernel_caches_on):
        by_list = Elim("n", Rel(0), [Const("a")], Rel(1))
        by_tuple = Elim("n", Rel(0), (Const("a"),), Rel(1))
        assert by_list is by_tuple
        assert isinstance(by_list.cases, tuple)

    def test_interning_counts_stats(self, kernel_caches_on):
        before_hits = KERNEL_STATS.intern_hits
        before_total = KERNEL_STATS.constructions
        probe = App(Const("stats-probe"), Const("stats-probe2"))
        again = App(Const("stats-probe"), Const("stats-probe2"))
        assert probe is again
        assert KERNEL_STATS.constructions > before_total
        assert KERNEL_STATS.intern_hits > before_hits

    def test_disabled_interning_still_equal(self, no_kernel_caches):
        a = App(Const("a"), Const("b"))
        b = App(Const("a"), Const("b"))
        assert a == b
        assert hash(a) == hash(b)
        assert not hash_consing_enabled()

    @given(terms())
    @settings(max_examples=60)
    def test_interned_and_plain_terms_equal(self, term):
        # The same de Bruijn ops yield equal results with interning off.
        enabled = subst(lift(term, 1), Const("c"), 0)
        prev = set_hash_consing(False)
        try:
            disabled = subst(lift(term, 1), Const("c"), 0)
        finally:
            set_hash_consing(prev)
        assert enabled == disabled == term


# ---------------------------------------------------------------------------
# Free-variable bounds
# ---------------------------------------------------------------------------


class TestMaxFreeRel:
    def test_leaves(self):
        assert max_free_rel(Rel(4)) == 5
        assert max_free_rel(SET) == 0
        assert max_free_rel(Const("c")) == 0

    def test_binders(self):
        assert max_free_rel(Lam("x", SET, Rel(0))) == 0
        assert max_free_rel(Lam("x", SET, Rel(1))) == 1
        assert max_free_rel(Pi("x", Rel(2), Rel(0))) == 3

    @given(terms())
    @settings(max_examples=100)
    def test_agrees_with_free_rels(self, term):
        rels = free_rels(term)
        expected = max(rels) + 1 if rels else 0
        assert max_free_rel(term) == expected

    @given(terms())
    @settings(max_examples=60)
    def test_is_closed_matches_free_rels(self, term):
        assert term.is_closed() == (not free_rels(term))


# ---------------------------------------------------------------------------
# Memoized de Bruijn ops: transparency
# ---------------------------------------------------------------------------


class TestMemoTransparency:
    @given(terms())
    @settings(max_examples=80)
    def test_lift_same_with_and_without_memo(self, term):
        with_memo = lift(term, 2, 1)
        prev = set_term_memo(False)
        try:
            without = lift(term, 2, 1)
        finally:
            set_term_memo(prev)
        assert with_memo == without

    @given(terms(), terms(max_free=1))
    @settings(max_examples=80)
    def test_subst_same_with_and_without_memo(self, term, value):
        with_memo = subst(term, value, 1)
        prev = set_term_memo(False)
        try:
            without = subst(term, value, 1)
        finally:
            set_term_memo(prev)
        assert with_memo == without

    @given(terms())
    @settings(max_examples=80)
    def test_free_rels_same_with_and_without_memo(self, term):
        with_memo = free_rels(term, 1)
        prev = set_term_memo(False)
        try:
            without = free_rels(term, 1)
        finally:
            set_term_memo(prev)
        assert with_memo == without

    def test_lift_short_circuits_closed_subtrees(self):
        closed = App(Const("f"), Const("x"))
        assert lift(closed, 5) is closed
        under = Lam("x", SET, App(closed, Rel(0)))
        assert lift(under, 3) is under

    def test_memo_counters_move(self, kernel_caches_on):
        counter = KERNEL_STATS.counter("lift")
        probe = Lam("x", SET, App(Rel(1), App(Rel(2), Const("memo-probe"))))
        lift(probe, 4, 0)
        before = counter.hits
        lift(probe, 4, 0)
        assert counter.hits > before


# ---------------------------------------------------------------------------
# Deep-term robustness
# ---------------------------------------------------------------------------


DEPTH = 4000


def _deep_lam(body, depth=DEPTH):
    for _ in range(depth):
        body = Lam("x", SET, body)
    return body


class TestDeepTerms:
    def test_deep_max_free_rel(self):
        assert max_free_rel(_deep_lam(Rel(0))) == 0
        assert max_free_rel(_deep_lam(Rel(DEPTH + 5))) == 6

    def test_deep_lift(self):
        deep = _deep_lam(Rel(DEPTH + 1))
        lifted = lift(deep, 3)
        assert max_free_rel(lifted) == 5

    def test_deep_subst(self):
        deep = _deep_lam(Rel(DEPTH))
        result = subst(deep, Const("c"), 0)
        assert result.is_closed()

    def test_deep_subst_many(self):
        deep = _deep_lam(Rel(DEPTH), depth=DEPTH)
        result = subst_many(deep, [Const("a"), Const("b")])
        assert result.is_closed()

    def test_deep_free_rels(self):
        deep = _deep_lam(Rel(DEPTH + 7))
        assert free_rels(deep) == frozenset({7})

    def test_deep_nf_raises_clean_error(self):
        # The recursive normalizer either succeeds or raises a clean
        # TermError — never a bare RecursionError.
        env = Environment()
        deep = _deep_lam(Rel(0), depth=50_000)
        try:
            nf(env, deep)
        except TermError as err:
            assert "deep" in str(err)
        # Same guarantee for whnf on an Elim tower.
        scrut = Rel(0)
        for _ in range(50_000):
            scrut = Elim("nat", Rel(0), (Const("z"),), scrut)
        try:
            whnf(env, scrut, delta=False)
        except TermError as err:
            assert "deep" in str(err)


# ---------------------------------------------------------------------------
# Environment-scoped reduction cache
# ---------------------------------------------------------------------------


def _nat_env():
    from repro.stdlib import make_env

    return make_env(lists=False, vectors=False)


class TestReductionCache:
    def test_whnf_and_nf_cached(self, kernel_caches_on):
        from repro.syntax.parser import parse

        env = _nat_env()
        app = parse(env, "add 2 3")
        first = nf(env, app)
        hits_before = KERNEL_STATS.counter("nf").hits
        second = nf(env, app)
        assert first == second
        assert KERNEL_STATS.counter("nf").hits > hits_before
        assert env.reduction_cache.size > 0

    def test_cache_transparent(self):
        from repro.syntax.parser import parse

        env_on = _nat_env()
        env_off = _nat_env()
        env_off.reduction_cache.enabled = False
        env_off.reduction_cache.clear()
        app = parse(env_on, "add 2 3")
        assert nf(env_on, app) == nf(env_off, app)
        assert env_off.reduction_cache.size == 0

    def test_redefine_invalidates(self):
        env = Environment()
        env.define("c0", SET, check=False, type=Sort(1))
        probe = Const("c0")
        assert nf(env, probe) == SET
        env.redefine("c0", Sort(1), Sort(2))
        # A stale cache would still answer SET.
        assert nf(env, probe) == Sort(1)

    def test_remove_invalidates(self):
        env = Environment()
        env.define("c1", SET, check=False, type=Sort(1))
        assert nf(env, Const("c1")) == SET
        env.remove("c1")
        env.define("c1", Sort(3), check=False, type=Sort(4))
        assert nf(env, Const("c1")) == Sort(3)

    def test_additive_define_keeps_cache(self, kernel_caches_on):
        from repro.syntax.parser import parse

        env = _nat_env()
        nf(env, parse(env, "add 2 3"))
        size_before = env.reduction_cache.size
        assert size_before > 0
        env.define("fresh_global", SET, check=False, type=Sort(1))
        assert env.reduction_cache.size == size_before

    def test_kernel_stats_exposed_via_environment(self):
        env = Environment()
        assert env.kernel_stats is KERNEL_STATS
        snap = env.kernel_stats.snapshot()
        assert "constructions" in snap and "tables" in snap
        assert env.kernel_stats.report()


# ---------------------------------------------------------------------------
# End-to-end transparency: repair output is identical with caches off
# ---------------------------------------------------------------------------


class TestEndToEndTransparency:
    def test_transform_identical_with_all_layers_off(self):
        from repro.cases.quickstart import setup_environment
        from repro.core.caching import TransformCache
        from repro.core.search.swap import swap_configuration
        from repro.core.transform import Transformer

        def run():
            env = setup_environment()
            config = swap_configuration(env, "list", "New.list", prove=False)
            transformer = Transformer(
                env, config, cache=TransformCache(enabled=False)
            )
            decl = env.constant("rev_app_distr")
            return transformer(decl.type), transformer(decl.body)

        with_layers = run()

        prev_intern = set_hash_consing(False)
        prev_memo = set_term_memo(False)
        from repro.kernel.env import set_reduction_cache_default

        prev_cache = set_reduction_cache_default(False)
        try:
            without_layers = run()
        finally:
            set_hash_consing(prev_intern)
            set_term_memo(prev_memo)
            set_reduction_cache_default(prev_cache)

        assert with_layers[0] == without_layers[0]
        assert with_layers[1] == without_layers[1]
