"""Unit and property tests for the de Bruijn term machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    PROP,
    Pi,
    Rel,
    SET,
    Sort,
    TermError,
    abstract_term,
    collect_globals,
    count_nodes,
    free_rels,
    lift,
    mentions_global,
    mk_app,
    mk_lams,
    mk_pis,
    occurs_rel,
    replace_subterm,
    subst,
    subst_many,
    type_sort,
    unfold_app,
    unfold_lams,
    unfold_pis,
)


# ---------------------------------------------------------------------------
# Random term generation for property tests
# ---------------------------------------------------------------------------


def terms(max_free: int = 3):
    """Strategy producing random terms (the tested laws are syntactic, so
    well-scopedness is not required)."""
    leaves = st.one_of(
        st.integers(min_value=0, max_value=max_free + 2).map(Rel),
        st.sampled_from([PROP, SET, Sort(1)]),
        st.sampled_from([Const("c"), Ind("i"), Constr("i", 0)]),
    )
    return st.recursive(
        leaves,
        lambda sub: st.one_of(
            st.tuples(sub, sub).map(lambda p: App(*p)),
            st.tuples(sub, sub).map(lambda p: Lam("x", p[0], p[1])),
            st.tuples(sub, sub).map(lambda p: Pi("x", p[0], p[1])),
        ),
        max_leaves=12,
    )


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


class TestSpines:
    def test_mk_app_unfold_roundtrip(self):
        term = mk_app(Const("f"), [Rel(0), Rel(1), SET])
        head, args = unfold_app(term)
        assert head == Const("f")
        assert args == (Rel(0), Rel(1), SET)

    def test_unfold_app_on_atom(self):
        assert unfold_app(Rel(3)) == (Rel(3), ())

    def test_app_method(self):
        assert Const("f").app(Rel(0), Rel(1)) == App(App(Const("f"), Rel(0)), Rel(1))

    def test_mk_pis_unfold_roundtrip(self):
        binders = [("a", SET), ("b", Rel(0))]
        term = mk_pis(binders, Rel(1))
        back, body = unfold_pis(term)
        assert list(back) == binders
        assert body == Rel(1)

    def test_mk_lams_unfold_roundtrip(self):
        binders = [("a", SET), ("b", Rel(0))]
        term = mk_lams(binders, Rel(0))
        back, body = unfold_lams(term)
        assert list(back) == binders
        assert body == Rel(0)


class TestSorts:
    def test_prop_set_levels(self):
        assert PROP.is_prop and not PROP.is_set
        assert SET.is_set and not SET.is_prop

    def test_type_sort_validates(self):
        assert type_sort(2).level == 2
        with pytest.raises(TermError):
            type_sort(0)


# ---------------------------------------------------------------------------
# Lifting
# ---------------------------------------------------------------------------


class TestLift:
    def test_lift_free_variable(self):
        assert lift(Rel(0), 2) == Rel(2)

    def test_lift_respects_cutoff(self):
        assert lift(Rel(0), 2, cutoff=1) == Rel(0)
        assert lift(Rel(1), 2, cutoff=1) == Rel(3)

    def test_lift_under_binder(self):
        term = Lam("x", SET, App(Rel(0), Rel(1)))
        lifted = lift(term, 1)
        assert lifted == Lam("x", SET, App(Rel(0), Rel(2)))

    def test_lift_zero_is_identity(self):
        term = Pi("x", SET, App(Rel(0), Rel(3)))
        assert lift(term, 0) is term

    def test_negative_lift_checks_underflow(self):
        with pytest.raises(TermError):
            lift(Rel(0), -1)

    @given(terms(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=80)
    def test_lift_then_unlift(self, term, amount):
        assert lift(lift(term, amount), -amount, cutoff=0) == term

    @given(terms(), st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=80)
    def test_lift_composition(self, term, a, b):
        assert lift(lift(term, a), b) == lift(term, a + b)


# ---------------------------------------------------------------------------
# Substitution
# ---------------------------------------------------------------------------


class TestSubst:
    def test_subst_hits_target(self):
        assert subst(Rel(0), Const("v")) == Const("v")

    def test_subst_shifts_above(self):
        assert subst(Rel(3), Const("v"), 1) == Rel(2)

    def test_subst_leaves_below(self):
        assert subst(Rel(0), Const("v"), 1) == Rel(0)

    def test_subst_under_binder_lifts_replacement(self):
        term = Lam("x", SET, Rel(1))
        assert subst(term, Rel(5)) == Lam("x", SET, Rel(6))

    @given(terms(), terms(max_free=1))
    @settings(max_examples=80)
    def test_subst_after_lift_is_identity(self, term, value):
        # Substituting into a term that was lifted over the binder is a
        # no-op (the classic simplification law).
        assert subst(lift(term, 1), value, 0) == term

    def test_subst_many_closed_replacements(self):
        term = App(Rel(0), Rel(1))
        result = subst_many(term, [Const("a"), Const("b")])
        assert result == App(Const("a"), Const("b"))

    def test_subst_many_is_simultaneous(self):
        # replacements[0] mentions Rel(0) of the *outer* context; a
        # sequential fold of subst would capture it when substituting
        # replacements[1] (yielding App(Const("b"), Const("b"))).
        term = App(Rel(0), Rel(1))
        result = subst_many(term, [Rel(0), Const("b")])
        assert result == App(Rel(0), Const("b"))

    def test_subst_many_interdependent_chain(self):
        # Each replacement mentions rels of the outer context; none may
        # be rewritten by the others.
        term = mk_app(Const("f"), [Rel(0), Rel(1), Rel(2)])
        result = subst_many(term, [Rel(1), Rel(0)])
        # Rel(0) -> Rel(1), Rel(1) -> Rel(0), Rel(2) -> shifted down by 2.
        assert result == mk_app(Const("f"), [Rel(1), Rel(0), Rel(0)])

    def test_subst_many_under_binder(self):
        # Under one binder the replacements must be lifted past it.
        term = Lam("x", SET, App(Rel(0), Rel(1)))
        result = subst_many(term, [Rel(0)])
        assert result == Lam("x", SET, App(Rel(0), Rel(1)))

    def test_subst_many_matches_iterated_subst_when_closed(self):
        # For closed replacements, parallel == sequential.
        term = mk_app(Const("f"), [Rel(0), Rel(1), Rel(5)])
        reps = [Const("a"), Const("b")]
        sequential = term
        for rep in reps:
            sequential = subst(sequential, rep, 0)
        assert subst_many(term, reps) == sequential


# ---------------------------------------------------------------------------
# Free variables, occurrences, abstraction
# ---------------------------------------------------------------------------


class TestFreeRels:
    def test_closed_term(self):
        assert Lam("x", SET, Rel(0)).is_closed()

    def test_open_term(self):
        assert free_rels(App(Rel(0), Rel(2))) == frozenset({0, 2})

    def test_binder_adjustment(self):
        assert free_rels(Lam("x", SET, Rel(2))) == frozenset({1})

    def test_occurs_rel(self):
        assert occurs_rel(Lam("x", SET, Rel(1)), 0)
        assert not occurs_rel(Lam("x", SET, Rel(0)), 0)

    @given(terms())
    @settings(max_examples=80)
    def test_lift_shifts_free_set(self, term):
        shifted = free_rels(lift(term, 2))
        assert shifted == frozenset(i + 2 for i in free_rels(term))


class TestAbstraction:
    def test_abstract_term_creates_binder_reference(self):
        goal = App(Const("P"), Const("t"))
        body = abstract_term(goal, Const("t"))
        assert body == App(Const("P"), Rel(0))
        assert subst(body, Const("t")) == goal

    def test_abstract_term_under_binder(self):
        goal = Lam("x", SET, App(Const("t"), Rel(0)))
        body = abstract_term(goal, Const("t"))
        assert body == Lam("x", SET, App(Rel(1), Rel(0)))

    @given(terms(max_free=0))
    @settings(max_examples=100)
    def test_abstract_then_subst_roundtrip(self, target):
        goal = App(App(Const("P"), target), Const("other"))
        body = abstract_term(goal, target)
        assert subst(body, target) == goal

    def test_replace_subterm(self):
        term = App(Const("old"), Lam("x", Const("old"), Rel(0)))
        out = replace_subterm(term, Const("old"), Const("new"))
        assert out == App(Const("new"), Lam("x", Const("new"), Rel(0)))


# ---------------------------------------------------------------------------
# Global references
# ---------------------------------------------------------------------------


class TestGlobals:
    def test_mentions_global_const(self):
        assert mentions_global(App(Const("x"), Rel(0)), "x")
        assert not mentions_global(App(Const("x"), Rel(0)), "y")

    def test_mentions_global_through_elim(self):
        term = Elim("list", Rel(0), (Rel(1),), Rel(2))
        assert mentions_global(term, "list")

    def test_mentions_global_constructor(self):
        assert mentions_global(Constr("nat", 1), "nat")

    def test_collect_globals(self):
        term = App(Const("f"), App(Ind("t"), Constr("u", 0)))
        assert collect_globals(term) == frozenset({"f", "t", "u"})

    def test_count_nodes(self):
        assert count_nodes(App(Rel(0), Rel(1))) == 3
