"""Pretty printer edge cases."""

from repro.kernel import App, Constr, Lam, PROP, Rel, SET, pretty, type_sort
from repro.kernel.context import Context
from repro.syntax.parser import parse


class TestAtoms:
    def test_sorts(self, env_basic):
        assert pretty(PROP) == "Prop"
        assert pretty(SET) == "Set"
        assert pretty(type_sort(2)) == "Type2"

    def test_unbound_rel_placeholder(self):
        assert pretty(Rel(0)).startswith("_rel")

    def test_context_names(self):
        ctx = Context.empty().push("n", SET)
        assert pretty(Rel(0), ctx=ctx) == "n"


class TestConstructorNaming:
    def test_unambiguous_name(self, env_basic):
        assert pretty(Constr("nat", 1), env=env_basic) == "S"

    def test_ambiguous_name_qualifies(self):
        from repro.stdlib import declare_list_type, make_env

        env = make_env(lists=True, vectors=False)
        declare_list_type(env, "New.list", swapped=True)
        rendered = pretty(Constr("New.list", 0), env=env)
        assert rendered == "New.list.cons"

    def test_without_env_uses_indices(self, env_basic):
        assert pretty(Constr("nat", 1)) == "nat#1"


class TestStructures:
    def test_nondependent_pi_is_arrow(self, env_basic):
        term = parse(env_basic, "nat -> nat")
        assert pretty(term, env=env_basic) == "nat -> nat"

    def test_dependent_pi_is_forall(self, env_basic):
        term = parse(env_basic, "forall (n : nat), eq nat n n")
        assert pretty(term, env=env_basic).startswith("forall (n : nat)")

    def test_binder_collision_freshens(self, env_basic):
        # Two nested binders with the same hint get distinct names.
        term = Lam("x", SET, Lam("x", SET, App(Rel(0), Rel(1))))
        rendered = pretty(term)
        assert "x" in rendered and "x0" in rendered

    def test_elim_prints_parseable_form(self, env_basic):
        term = parse(
            env_basic,
            "Elim[nat](O; fun (_ : nat) => nat){ O, fun (p IH : nat) => p }",
        )
        rendered = pretty(term, env=env_basic)
        assert rendered.startswith("Elim[nat](")
        assert parse(env_basic, rendered) == term

    def test_application_parenthesization(self, env_basic):
        term = parse(env_basic, "S (S O)")
        assert pretty(term, env=env_basic) == "S (S O)"

    def test_underscore_binder_renamed(self, env_basic):
        term = parse(env_basic, "fun (_ : nat) => O")
        rendered = pretty(term, env=env_basic)
        assert "(x : nat)" in rendered
