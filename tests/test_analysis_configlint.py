"""The configuration linter: Figure 8 coherence as diagnostics."""

import pytest

from repro.analysis import lint_configuration
from repro.core.config import (
    AlignedSide,
    Configuration,
    Equivalence,
    TermSide,
)
from repro.core.search.swap import swap_configuration
from repro.kernel.term import App, Ind, Lam, Rel, Sort
from repro.stdlib import declare_list_type, make_env


@pytest.fixture(scope="module")
def env():
    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    return env


def codes(diags):
    return [d.code for d in diags]


class TestTrueNegatives:
    def test_swap_configuration_is_coherent(self, env):
        config = swap_configuration(env, "list", "New.list")
        assert lint_configuration(env, config) == []

    def test_binary_manual_configuration_is_coherent(self, binary_scenario):
        diags = lint_configuration(
            binary_scenario.env, binary_scenario.config
        )
        assert diags == []


class TestTruePositives:
    def test_arity_mismatch(self, env):
        # list's cons takes 2 arguments; declare 3 on the B side.
        a = AlignedSide(env, "list")
        b = TermSide(
            n_params=1,
            type_fn=Lam("T", Sort(0), App(Ind("list"), Rel(0))),
            dep_constr=(
                Lam("T", Sort(0), App(Ind("list"), Rel(0))),
                Lam("T", Sort(0), App(Ind("list"), Rel(0))),
            ),
            dep_elim=Lam("T", Sort(0), Sort(0)),
            constr_arities=(0, 3),
        )
        config = Configuration(a=a, b=b)
        diags = lint_configuration(env, config)
        assert "RA203" in codes(diags)

    def test_open_configuration_term(self, env):
        a = AlignedSide(env, "list")
        b = TermSide(
            n_params=1,
            type_fn=Lam("T", Sort(0), App(Ind("list"), Rel(0))),
            dep_constr=(
                Lam("T", Sort(0), Rel(5)),  # unbound
                Lam("T", Sort(0), App(Ind("list"), Rel(0))),
            ),
            dep_elim=Lam("T", Sort(0), Sort(0)),
            constr_arities=(0, 2),
        )
        config = Configuration(a=a, b=b)
        diags = lint_configuration(env, config)
        ra204 = [d for d in diags if d.code == "RA204"]
        assert ra204, codes(diags)
        assert any("dep_constr[0]" in d.path_str for d in ra204)

    def test_iota_count_mismatch(self, env):
        a = AlignedSide(env, "list")
        b = TermSide(
            n_params=1,
            type_fn=Lam("T", Sort(0), App(Ind("list"), Rel(0))),
            dep_constr=(
                Lam("T", Sort(0), App(Ind("list"), Rel(0))),
                Lam("T", Sort(0), App(Ind("list"), Rel(0))),
            ),
            dep_elim=Lam("T", Sort(0), Sort(0)),
            constr_arities=(0, 2),
            iota=(None,),  # two constructors, one iota entry
        )
        # TermSide would normally default this; force the defect.
        config = Configuration(a=a, b=b)
        diags = lint_configuration(env, config)
        assert "RA205" in codes(diags)

    def test_invalid_permutation(self, env):
        a = AlignedSide(env, "list")
        a.perm = (0, 0)  # corrupt it after construction
        config = Configuration(a=a, b=AlignedSide(env, "New.list"))
        diags = lint_configuration(env, config)
        assert "RA208" in codes(diags)

    def test_equivalence_function_ill_typed(self, env):
        config = Configuration(
            a=AlignedSide(env, "list"),
            b=AlignedSide(env, "New.list"),
            equivalence=Equivalence(
                f=App(Ind("nat"), Ind("nat")),  # nat is not a function
                g=Lam("x", Ind("nat"), Rel(0)),
            ),
        )
        diags = lint_configuration(env, config)
        assert "RA207" in codes(diags)

    def test_roundtrip_proof_wrong_shape(self, env):
        # eq_refl at a nat proves nothing about a roundtrip.
        from repro.syntax.parser import parse

        config = Configuration(
            a=AlignedSide(env, "list"),
            b=AlignedSide(env, "New.list"),
            equivalence=Equivalence(
                f=Lam("x", Ind("nat"), Rel(0)),
                g=Lam("x", Ind("nat"), Rel(0)),
                section=parse(env, "pred"),  # concludes in nat, not eq
            ),
        )
        diags = lint_configuration(env, config)
        assert "RA206" in codes(diags)
