"""The tactic-script linter: decompiled output vetted before replay."""

import pytest

from repro.analysis import Severity, lint_script
from repro.decompile.decompiler import decompile_to_script
from repro.decompile.qtac import (
    Script,
    TApply,
    TExact,
    TInduction,
    TIntro,
    TIntros,
    TReflexivity,
)
from repro.stdlib import make_env


@pytest.fixture(scope="module")
def env():
    return make_env(lists=True, vectors=False)


def codes(diags):
    return [d.code for d in diags]


class TestTrueNegatives:
    def test_decompiled_quickstart_script_is_clean(self, quickstart_scenario):
        scenario = quickstart_scenario
        diags = lint_script(
            scenario.env, scenario.script, subject="rev_app_distr"
        )
        assert [d for d in diags if d.severity is Severity.ERROR] == []

    def test_decompiled_stdlib_proof_is_clean(self, env):
        body = env.constant("app_nil_r").body
        script = decompile_to_script(env, body)
        assert lint_script(env, script) == []

    def test_used_intro_is_not_flagged(self, env):
        script = Script((TIntro("n"), TExact("eq_refl nat n")))
        assert lint_script(env, script) == []


class TestTruePositives:
    def test_unresolvable_apply(self, env):
        script = Script((TApply("no_such_lemma_anywhere"),))
        diags = lint_script(env, script)
        assert codes(diags) == ["RA303"]
        assert diags[0].severity is Severity.ERROR

    def test_unresolvable_exact_free_variable(self, env):
        # H is never introduced, so it does not resolve.
        script = Script((TExact("eq_refl nat H"),))
        diags = lint_script(env, script)
        assert codes(diags) == ["RA303"]

    def test_unused_intro(self, env):
        script = Script((TIntro("H"), TReflexivity()))
        diags = lint_script(env, script)
        assert codes(diags) == ["RA301"]
        assert diags[0].severity is Severity.WARNING

    def test_bulk_intros_are_exempt_from_unused(self, env):
        script = Script((TIntros(("A", "B")), TReflexivity()))
        assert lint_script(env, script) == []

    def test_shadowed_intro(self, env):
        script = Script(
            (TIntro("H"), TIntro("H"), TExact("eq_refl nat O"))
        )
        diags = lint_script(env, script)
        assert "RA302" in codes(diags)

    def test_induction_on_unbound_name(self, env):
        script = Script(
            (
                TInduction(
                    scrut="ghost",
                    case_names=((), ("n", "IH")),
                    cases=(Script(()), Script(())),
                ),
            )
        )
        diags = lint_script(env, script)
        assert "RA304" in codes(diags)

    def test_case_binders_are_in_scope_inside_cases(self, env):
        script = Script(
            (
                TIntro("m"),
                TInduction(
                    scrut="m",
                    case_names=((), ("n", "IH")),
                    cases=(
                        Script((TReflexivity(),)),
                        Script((TExact("IH"),)),
                    ),
                ),
            )
        )
        assert lint_script(env, script) == []
