"""Tests for ``repro.obs``: spans, counter deltas, exports, transparency.

The hard guarantees under test:

* nested spans form the right forest, with per-span wall time and
  kernel-counter deltas attributed to the span that did the work;
* each ``CommandSession`` command gets its own span whose deltas cover
  only that command (deltas reset between commands);
* with tracing disabled, no spans are recorded, ``span()`` allocates
  nothing, and repair output is byte-identical to a traced run;
* ``KernelStats.snapshot()`` / ``report()`` round-trip through JSON and
  agree with each other;
* the Chrome trace-event export is structurally valid.
"""

import json

import pytest

from repro.commands import CommandSession
from repro.kernel.pretty import pretty
from repro.kernel.stats import CACHES_DISABLED_BY_ENV, KERNEL_STATS, KernelStats
from repro.kernel.term import App, Ind, Lam, Pi, Rel, Sort
from repro.obs import (
    chrome_trace,
    get_tracer,
    reset_tracer,
    set_tracing,
    span,
    span_forest,
    summarize_spans,
    term_depth,
    term_size,
    tracing_enabled,
    write_chrome_trace,
)
from repro.obs.metrics import binder_depth
from repro.stdlib import make_env


@pytest.fixture
def traced():
    """Tracing on, a clean tracer, previous state restored afterwards."""
    previous = set_tracing(True)
    reset_tracer()
    yield get_tracer()
    reset_tracer()
    set_tracing(previous)


@pytest.fixture
def untraced():
    """Tracing explicitly off (the suite may run under REPRO_TRACE=1)."""
    previous = set_tracing(False)
    reset_tracer()
    yield
    set_tracing(previous)


def _declare_swapped_list(env):
    from repro.stdlib.listlib import declare_list_type

    declare_list_type(env, "New.list", swapped=True)


# -- Span structure -----------------------------------------------------------


def test_nested_spans_form_a_tree(traced):
    with span("outer"):
        with span("inner_a"):
            pass
        with span("inner_b"):
            with span("leaf"):
                pass
    assert [s.name for s in traced.roots] == ["outer"]
    outer = traced.roots[0]
    assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
    assert [c.name for c in outer.children[1].children] == ["leaf"]
    assert outer.children[0].parent is outer
    # Completed spans are recorded in completion order; walk() is start
    # order.
    assert [s.name for s in outer.walk()] == [
        "outer",
        "inner_a",
        "inner_b",
        "leaf",
    ]
    assert len(traced.spans) == 4
    for s in traced.spans:
        assert s.end_ns >= s.start_ns


def test_span_durations_nest(traced):
    with span("outer"):
        with span("inner"):
            pass
    outer, inner = traced.roots[0], traced.roots[0].children[0]
    assert outer.duration_s >= inner.duration_s >= 0.0


def test_span_survives_exceptions(traced):
    with pytest.raises(ValueError):
        with span("outer"):
            with span("inner"):
                raise ValueError("boom")
    assert [s.name for s in traced.roots] == ["outer"]
    assert traced.current is None  # the stack fully unwound


def test_span_args_and_gauges(traced):
    with span("phase", constant="rev") as sp:
        sp.gauge("term_size_in", 17)
    recorded = traced.roots[0]
    assert recorded.args == {"constant": "rev"}
    assert recorded.gauges == {"term_size_in": 17}
    tree = recorded.to_dict()
    assert tree["name"] == "phase"
    assert tree["gauges"]["term_size_in"] == 17


# -- Kernel counter deltas -----------------------------------------------------


def test_counter_deltas_attributed_to_the_span_that_worked(traced):
    env = make_env(lists=True, vectors=False)
    with span("busy"):
        from repro.kernel.reduce import nf

        nf(env, App(Lam("x", Sort(1), Rel(0)), Ind("nat")))
    with span("idle"):
        pass
    busy, idle = traced.roots
    if not CACHES_DISABLED_BY_ENV:
        # The counters record cache traffic, so they only move when the
        # cache layers are on.
        assert busy.kernel["constructions"] > 0
    assert idle.kernel["constructions"] == 0
    assert idle.kernel["tables"] == {}


def test_counter_deltas_reset_between_commands(traced):
    env = make_env(lists=True, vectors=False)
    _declare_swapped_list(env)
    session = CommandSession(env)
    session.execute("Repair list New.list in rev_app_distr as New.rad")
    session.execute("Decompile New.rad")
    commands = [s for s in traced.roots if s.name == "command"]
    assert len(commands) == 2
    repair_cmd, decompile_cmd = commands
    # The repair does heavy kernel work; the decompile of an
    # already-repaired constant must not inherit its counters.  (The
    # counters record cache traffic, so they stay zero when the cache
    # layers are disabled.)
    if not CACHES_DISABLED_BY_ENV:
        assert repair_cmd.kernel["constructions"] > 0
        assert (
            decompile_cmd.kernel["constructions"]
            < repair_cmd.kernel["constructions"]
        )
    # The sum of per-command deltas accounts against the process totals:
    # each increment lands in exactly one command span.
    assert repair_cmd.kernel["constructions"] + decompile_cmd.kernel[
        "constructions"
    ] <= KERNEL_STATS.constructions


def test_command_spans_carry_the_command_text(traced):
    env = make_env(lists=True, vectors=False)
    _declare_swapped_list(env)
    session = CommandSession(env)
    session.execute("Repair list New.list in rev_app_distr")
    (command,) = [s for s in traced.roots if s.name == "command"]
    assert command.args["command"] == "Repair list New.list in rev_app_distr"
    phases = {s.name for s in command.walk()}
    assert {"configure", "repair", "transform", "typecheck"} <= phases


# -- Transparency when disabled ------------------------------------------------


def test_disabled_records_no_spans(untraced):
    with span("ghost"):
        with span("nested_ghost"):
            pass
    tracer = get_tracer()
    assert tracer.roots == []
    assert tracer.spans == []


def test_disabled_span_is_a_shared_singleton(untraced):
    a = span("one")
    b = span("two", constant="x")
    assert a is b  # no allocation on the disabled path
    assert a.__enter__() is a
    assert not tracing_enabled()
    a.gauge("ignored", 1)  # must be a no-op, not an error


def test_repair_output_identical_with_and_without_tracing():
    def run(enabled):
        previous = set_tracing(enabled)
        reset_tracer()
        try:
            env = make_env(lists=True, vectors=False)
            _declare_swapped_list(env)
            session = CommandSession(env)
            result = session.execute("Repair list New.list in rev_app_distr")
            term = result.results[0].term
            type_ = result.results[0].type
            return pretty(term, env=env) + "\n" + pretty(type_, env=env)
        finally:
            reset_tracer()
            set_tracing(previous)

    assert run(False) == run(True)


# -- KernelStats round-trip ----------------------------------------------------


def test_kernel_stats_snapshot_report_round_trip():
    stats = KernelStats()
    stats.constructions = 100
    stats.intern_hits = 25
    counter = stats.counter("whnf")
    counter.hits = 30
    counter.misses = 10
    snapshot = stats.snapshot()
    # JSON round-trip is lossless.
    assert json.loads(json.dumps(snapshot)) == snapshot
    assert snapshot["constructions"] == 100
    assert snapshot["intern_hit_rate"] == 0.25
    assert snapshot["tables"]["whnf"] == {
        "hits": 30,
        "misses": 10,
        "hit_rate": 0.75,
    }
    # The human report shows the same numbers.
    report = stats.report()
    assert "constructions : 100" in report
    assert "30 hits / 10 misses" in report
    assert "75.0%" in report


def test_kernel_stats_reset_zeroes_snapshot():
    stats = KernelStats()
    stats.counter("lift").hits = 5
    stats.reset()
    snapshot = stats.snapshot()
    assert snapshot["constructions"] == 0
    assert snapshot["tables"]["lift"]["hits"] == 0


# -- Exports -------------------------------------------------------------------


def test_chrome_trace_is_valid(traced, tmp_path):
    with span("outer", constant="rev"):
        with span("inner"):
            pass
    document = chrome_trace()
    events = document["traceEvents"]
    assert len(events) == 2
    for event in events:
        assert event["ph"] == "X"
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert isinstance(event["name"], str)
    # Sorted by start time: outer starts before inner.
    assert [e["name"] for e in events] == ["outer", "inner"]
    assert events[0]["args"]["constant"] == "rev"
    # Round-trips through a file.
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path))
    assert json.loads(path.read_text())["traceEvents"]


def test_span_forest_export(traced):
    with span("a"):
        with span("b"):
            pass
    with span("c"):
        pass
    forest = span_forest()
    assert [t["name"] for t in forest] == ["a", "c"]
    assert [c["name"] for c in forest[0]["children"]] == ["b"]


def test_phase_summary_aggregates(traced):
    for _ in range(3):
        with span("transform"):
            pass
    with span("decompile") as sp:
        sp.gauge("term_size_in", 42)
    summary = get_tracer().phase_summary()
    assert summary["transform"]["count"] == 3
    assert summary["transform"]["wall_time_s"] >= 0
    assert summary["decompile"]["gauges"]["term_size_in"] == 42
    # summarize_spans on a subtree matches the flat view for that span.
    sub = summarize_spans(get_tracer().roots[:1])
    assert sub["transform"]["count"] == 1


# -- Term gauges ---------------------------------------------------------------


def test_term_gauges():
    # (fun (x : Type1) => x) nat  — 5 nodes, depth 3.
    term = App(Lam("x", Sort(1), Rel(0)), Ind("nat"))
    assert term_size(term) == 5
    assert term_depth(term) == 3
    assert binder_depth(term) == 1
    pi = Pi("A", Sort(1), Pi("B", Sort(1), Rel(1)))
    assert binder_depth(pi) == 2
    assert term_size(Rel(0)) == 1
    assert term_depth(Rel(0)) == 1
