"""Conversion (definitional equality) and cumulativity."""

from repro.kernel import (
    App,
    Ind,
    Lam,
    PROP,
    Pi,
    Rel,
    SET,
    conv,
    sub,
    type_sort,
)
from repro.syntax.parser import parse
from repro.stdlib.natlib import nat_of_int


class TestConv:
    def test_syntactic_equality(self, env_basic):
        assert conv(env_basic, nat_of_int(2), nat_of_int(2))

    def test_beta_conversion(self, env_basic):
        lhs = App(Lam("x", Ind("nat"), Rel(0)), nat_of_int(3))
        assert conv(env_basic, lhs, nat_of_int(3))

    def test_delta_iota_conversion(self, env_basic):
        assert conv(
            env_basic,
            parse(env_basic, "add 1 2"),
            parse(env_basic, "3"),
        )

    def test_add_succ_definitional(self, env_basic):
        # add (S n) m == S (add n m) holds by iota, even for open n, m.
        lhs = parse(env_basic, "fun (n m : nat) => add (S n) m")
        rhs = parse(env_basic, "fun (n m : nat) => S (add n m)")
        assert conv(env_basic, lhs, rhs)

    def test_add_succ_right_not_definitional(self, env_basic):
        # add n (S m) == S (add n m) is only propositional.
        lhs = parse(env_basic, "fun (n m : nat) => add n (S m)")
        rhs = parse(env_basic, "fun (n m : nat) => S (add n m)")
        assert not conv(env_basic, lhs, rhs)

    def test_eta_for_functions(self, env_basic):
        f = parse(env_basic, "pred")
        eta = parse(env_basic, "fun (n : nat) => pred n")
        assert conv(env_basic, f, eta)
        assert conv(env_basic, eta, f)

    def test_distinct_constructors_not_convertible(self, env_basic):
        assert not conv(env_basic, nat_of_int(0), nat_of_int(1))

    def test_sorts(self, env_basic):
        assert conv(env_basic, SET, SET)
        assert not conv(env_basic, SET, PROP)
        assert not conv(env_basic, type_sort(1), type_sort(2))

    def test_pi_congruence(self, env_basic):
        a = parse(env_basic, "forall (n : nat), nat")
        b = parse(env_basic, "nat -> nat")
        assert conv(env_basic, a, b)


class TestCumulativity:
    def test_sort_subtyping(self, env_basic):
        assert sub(env_basic, PROP, SET)
        assert sub(env_basic, SET, type_sort(1))
        assert sub(env_basic, type_sort(1), type_sort(2))
        assert not sub(env_basic, type_sort(2), type_sort(1))

    def test_pi_codomain_covariant(self, env_basic):
        small = Pi("x", Ind("nat"), SET)
        large = Pi("x", Ind("nat"), type_sort(2))
        assert sub(env_basic, small, large)
        assert not sub(env_basic, large, small)

    def test_pi_domain_invariant(self, env_basic):
        # Coq-style: domains are compared for conversion, not subtyping.
        small = Pi("x", SET, Ind("nat"))
        large = Pi("x", type_sort(2), Ind("nat"))
        assert not sub(env_basic, small, large)
