"""Section 3.1.1 end to end: factoring constructors out to bool."""

from repro.kernel import Context, check, mentions_global, nf, pretty
from repro.syntax.parser import parse


class TestRefactor:
    def test_all_five_repaired(self, refactor_scenario):
        names = {r.new_name for r in refactor_scenario.results}
        assert names == {"J.neg", "J.and", "J.or", "J.demorgan_1", "J.demorgan_2"}

    def test_no_reference_to_I(self, refactor_scenario):
        for result in refactor_scenario.results:
            assert not mentions_global(result.term, "I")
            assert not mentions_global(result.type, "I")

    def test_and_matches_paper_output(self, refactor_scenario):
        # and (j1 j2 : J) := J_rect _ (fun b => bool_rect _ j2 (makeJ false) b) j1
        env = refactor_scenario.env
        body = pretty(env.constant("J.and").body, env=env)
        assert "Elim[J]" in body
        assert "Elim[bool]" in body
        assert "makeJ false" in body

    def test_demorgan_over_J_checks(self, refactor_scenario):
        env = refactor_scenario.env
        for name in ["J.demorgan_1", "J.demorgan_2"]:
            decl = env.constant(name)
            check(env, Context.empty(), decl.body, decl.type)

    def test_truth_table_preserved(self, refactor_scenario):
        env = refactor_scenario.env
        # A maps to true: and (makeJ true) x = x; and (makeJ false) x = makeJ false.
        for x in ["makeJ true", "makeJ false"]:
            out = nf(env, parse(env, f"J.and (makeJ true) ({x})"))
            assert out == nf(env, parse(env, x))
            out = nf(env, parse(env, f"J.and (makeJ false) ({x})"))
            assert out == nf(env, parse(env, "makeJ false"))

    def test_definitional_iota_of_factored_elim(self, refactor_scenario):
        # dep_elim (makeJ true) reduces to the A case without rewrites.
        env = refactor_scenario.env
        out = nf(
            env,
            parse(
                env,
                "Elim[J](makeJ true; fun (_ : J) => nat)"
                "{ fun (b : bool) => "
                "Elim[bool](b; fun (_ : bool) => nat){ 1, 2 } }",
            ),
        )
        assert out == nf(env, parse(env, "1"))

    def test_equivalence_checks(self, refactor_scenario):
        from repro.kernel import typecheck_closed

        eqv = refactor_scenario.config.equivalence
        typecheck_closed(refactor_scenario.env, eqv.section)
        typecheck_closed(refactor_scenario.env, eqv.retraction)
