"""repro.service: job model, graph oracle, store, scheduler, faults, CLI.

The scheduler-semantics tests drive :func:`run_batch` with stub runners
(no kernel work), so retry/timeout/cascade logic is tested fast and in
isolation; the end-to-end tests then run real repairs through the
in-process executor, and a small parallel section exercises the
subprocess pool with injected crashes (CI runs this file again at
``--jobs 2`` plus a fault-injection sweep).
"""

import json
import sys
from pathlib import Path

import pytest

from repro.commands import CommandError, CommandSession
from repro.kernel.stats import KERNEL_STATS
from repro.service import (
    BatchOptions,
    FaultPlan,
    JobError,
    RepairJob,
    ResultStore,
    WorkerCrash,
    run_batch,
)
from repro.service.graph import infer_edges, needs_repair, repair_order, toposort
from repro.service.job import (
    LIVE_SETUP,
    SCHEMA_VERSION,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    fingerprint_env,
    fingerprint_source,
)

QUICKSTART_SETUP = "repro.service.cases:quickstart_env"


def _job(name="j", target="t", after=(), **kwargs):
    defaults = dict(
        setup="tests.fake:env",
        config={"kind": "auto", "a": "A", "b": "B"},
        old=("A",),
        env_fingerprint="f" * 8,
    )
    defaults.update(kwargs)
    return RepairJob(name=name, target=target, after=tuple(after), **defaults)


def _ok_runner(record=None):
    def run(payload, attempt, timeout_s):
        return dict(record or {}, status="ok", new_name=payload["target"] + "'")

    return run


# -- The job model -----------------------------------------------------------


class TestJobModel:
    def test_key_ignores_batch_bookkeeping(self):
        a = _job(name="one")
        b = _job(name="two", after=("one",))
        assert a.key == b.key

    def test_key_tracks_identity_fields(self):
        base = _job()
        assert _job(target="other").key != base.key
        assert _job(env_fingerprint="g" * 8).key != base.key
        assert _job(skip=("x",)).key != base.key
        assert _job(new_name="n").key != base.key

    def test_from_dict_roundtrip(self):
        raw = {
            "name": "j",
            "setup": "tests.fake:env",
            "target": "t",
            "config": {"kind": "auto", "a": "A", "b": "B"},
            "old": ["A"],
            "skip": ["s"],
            "after": ["other"],
            "env_fingerprint": "f" * 8,
        }
        job = RepairJob.from_dict(raw)
        assert job.skip == ("s",)
        assert job.after == ("other",)
        assert job.key == RepairJob.from_dict(dict(raw)).key

    @pytest.mark.parametrize(
        "mutation,message",
        [
            ({"bogus": 1}, "unknown job field"),
            ({"config": {"kind": "nope"}}, "unknown config kind"),
            ({"config": {"kind": "auto"}}, "needs 'a' and 'b'"),
            ({"old": []}, "missing old globals"),
            ({"target": ""}, "missing target"),
            ({"rename": {"kind": "prefix"}}, "needs a string 'value'"),
            ({"skip": [1]}, "'skip' must be a list"),
        ],
    )
    def test_from_dict_rejects(self, mutation, message):
        raw = {
            "name": "j",
            "setup": "tests.fake:env",
            "target": "t",
            "config": {"kind": "auto", "a": "A", "b": "B"},
            "old": ["A"],
        }
        raw.update(mutation)
        with pytest.raises(JobError, match=message):
            RepairJob.from_dict(raw)

    def test_fingerprint_source_tracks_module_edits(self, tmp_path, monkeypatch):
        pkg = tmp_path / "fp_mod.py"
        pkg.write_text("def env():\n    return None\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        first = fingerprint_source("fp_mod:env")
        assert first == fingerprint_source("fp_mod:env")
        pkg.write_text("def env():\n    return 1\n")
        assert fingerprint_source("fp_mod:env") != first

    def test_fingerprint_env_is_structural(self):
        from repro.cases.quickstart import setup_environment

        one, two = setup_environment(), setup_environment()
        assert fingerprint_env(one) == fingerprint_env(two)
        from repro.syntax.parser import parse

        two.define("extra", parse(two, "fun (n : nat) => n"))
        assert fingerprint_env(one) != fingerprint_env(two)


# -- The dependency graph, sharing its oracle with Repair module -------------


class TestGraphOracle:
    def test_repair_module_matches_repair_order(self):
        """`Repair module` defines constants in exactly the oracle's order."""
        from repro.cases.quickstart import setup_environment
        from repro.core.repair import RepairSession
        from repro.core.search import configure

        env = setup_environment()
        oracle = repair_order(env, ["list"])
        session = RepairSession(
            env,
            configure(env, "list", "New.list"),
            old_globals=["list"],
            rename=lambda n: f"New.{n}",
        )
        session.repair_module()
        assert list(session.results) == oracle

    def test_repair_constant_matches_targeted_order(self):
        from repro.cases.quickstart import setup_environment
        from repro.core.repair import RepairSession
        from repro.core.search import configure

        env = setup_environment()
        oracle = repair_order(env, ["list"], targets=["rev_app_distr"])
        session = RepairSession(
            env,
            configure(env, "list", "New.list"),
            old_globals=["list"],
            rename=lambda n: f"New.{n}",
        )
        session.repair_constant("rev_app_distr")
        assert list(session.results) == oracle
        assert oracle[-1] == "rev_app_distr"

    def test_needs_repair_skips_recursors_and_bodyless(self):
        from repro.cases.quickstart import setup_environment

        env = setup_environment()
        assert needs_repair(env, "rev_app_distr", ["list"])
        assert not needs_repair(env, "list_rect", ["list"])
        assert not needs_repair(env, "not-a-constant", ["list"])
        assert not needs_repair(env, "pred", ["list"])

    def test_infer_edges_orders_dependent_targets(self):
        from repro.cases.quickstart import setup_environment

        env = setup_environment()
        jobs = [
            _job(name="rev", target="rev_app_distr", setup=LIVE_SETUP,
                 config={"kind": "live"}, old=("list",)),
            _job(name="assoc", target="app_assoc", setup=LIVE_SETUP,
                 config={"kind": "live"}, old=("list",)),
        ]
        edges = infer_edges(env, jobs)
        assert edges["rev"] == ("assoc",)
        assert edges["assoc"] == ()

    def test_toposort_stable_and_cycle_safe(self):
        order = toposort(["c", "b", "a"], {"c": ("a",), "b": (), "a": ()})
        assert order == ["b", "a", "c"]
        with pytest.raises(ValueError, match="cycle"):
            toposort(["a", "b"], {"a": ("b",), "b": ("a",)})
        with pytest.raises(ValueError, match="unknown job"):
            toposort(["a"], {"a": ("ghost",)})


# -- The persistent store ----------------------------------------------------


class TestStore:
    def _record(self, key):
        return {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "result": {"status": "ok"},
        }

    def test_roundtrip_and_counters(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get("k" * 8) is None
        store.put("k" * 8, self._record("k" * 8))
        assert store.get("k" * 8)["result"] == {"status": "ok"}
        assert (store.hits, store.misses) == (1, 1)
        assert store.size == 1
        assert store.clear() == 1

    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "c" * 8
        Path(store.path_for(key)).parent.mkdir(parents=True, exist_ok=True)
        Path(store.path_for(key)).write_text("{ truncated garbage")
        assert store.get(key) is None

    @pytest.mark.parametrize(
        "record",
        [
            [],  # not an object
            {"schema_version": 999, "key": "w" * 8, "result": {}},
            {"schema_version": SCHEMA_VERSION, "key": "other", "result": {}},
            {"schema_version": SCHEMA_VERSION, "key": "w" * 8, "result": 3},
        ],
    )
    def test_wrong_shape_is_a_miss(self, tmp_path, record):
        store = ResultStore(str(tmp_path))
        key = "w" * 8
        Path(store.path_for(key)).parent.mkdir(parents=True, exist_ok=True)
        Path(store.path_for(key)).write_text(json.dumps(record))
        assert store.get(key) is None

    def test_no_partial_files_left_behind(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("a" * 8, self._record("a" * 8))
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp")]
        assert leftovers == []


# -- Scheduler semantics (stub runners, no kernel work) ----------------------


class TestSchedulerSemantics:
    def test_outcomes_in_input_order(self):
        jobs = [_job(name="b", target="tb"), _job(name="a", target="ta")]
        report = run_batch(jobs, BatchOptions(jobs=1), runner=_ok_runner())
        assert [o.job.name for o in report.outcomes] == ["b", "a"]
        assert all(o.status == STATUS_OK for o in report.outcomes)
        assert report.ok

    def test_retryable_failure_is_retried_then_ok(self):
        calls = []

        def flaky(payload, attempt, timeout_s):
            calls.append(attempt)
            if attempt == 0:
                return {"status": "failed", "error": "flake", "retryable": True}
            return {"status": "ok", "new_name": "t'"}

        report = run_batch([_job()], BatchOptions(jobs=1), runner=flaky)
        assert calls == [0, 1]
        outcome = report.outcomes[0]
        assert (outcome.status, outcome.attempts) == (STATUS_OK, 2)

    def test_deterministic_failure_is_not_retried(self):
        calls = []

        def bad(payload, attempt, timeout_s):
            calls.append(attempt)
            return {"status": "failed", "error": "no", "retryable": False}

        report = run_batch([_job()], BatchOptions(jobs=1), runner=bad)
        assert calls == [0]
        assert report.outcomes[0].status == STATUS_FAILED
        assert report.outcomes[0].error == "no"

    def test_crash_retries_exhaust_to_failed(self):
        def crash(payload, attempt, timeout_s):
            raise WorkerCrash("boom")

        report = run_batch(
            [_job()], BatchOptions(jobs=1, retries=2, backoff_s=0.0),
            runner=crash,
        )
        outcome = report.outcomes[0]
        assert (outcome.status, outcome.attempts) == (STATUS_FAILED, 3)
        assert "boom" in outcome.error

    def test_failure_cascades_skip_transitive_dependents(self):
        jobs = [
            _job(name="root", target="r"),
            _job(name="mid", target="m", after=("root",)),
            _job(name="leaf", target="l", after=("mid",)),
            _job(name="island", target="i"),
        ]

        def root_fails(payload, attempt, timeout_s):
            if payload["target"] == "r":
                return {"status": "failed", "error": "x", "retryable": False}
            return {"status": "ok", "new_name": "n"}

        report = run_batch(jobs, BatchOptions(jobs=1), runner=root_fails)
        statuses = {o.job.name: o.status for o in report.outcomes}
        assert statuses == {
            "root": STATUS_FAILED,
            "mid": STATUS_SKIPPED,
            "leaf": STATUS_SKIPPED,
            "island": STATUS_OK,
        }
        assert report.outcome("mid").error == "dependency 'root' did not complete"

    def test_cache_hit_skips_runner(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = _job()
        store.put(
            job.key,
            {
                "schema_version": SCHEMA_VERSION,
                "key": job.key,
                "job": job.payload(),
                "result": {"status": "ok", "new_name": "t'"},
            },
        )
        calls = []

        def runner(payload, attempt, timeout_s):
            calls.append(payload["target"])
            return {"status": "ok"}

        report = run_batch([job], BatchOptions(jobs=1, store=store), runner=runner)
        assert calls == []
        assert report.outcomes[0].status == STATUS_CACHED
        assert report.store_hits == 1

    def test_refresh_forces_recompute(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = _job()
        store.put(
            job.key,
            {
                "schema_version": SCHEMA_VERSION,
                "key": job.key,
                "result": {"status": "ok"},
            },
        )
        report = run_batch(
            [job],
            BatchOptions(jobs=1, store=store, refresh=True),
            runner=_ok_runner(),
        )
        assert report.outcomes[0].status == STATUS_OK

    def test_ok_results_are_persisted(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = _job()
        run_batch([job], BatchOptions(jobs=1, store=store), runner=_ok_runner())
        record = store.get(job.key)
        assert record["result"]["new_name"] == "t'"
        assert record["job"]["name"] == job.name

    def test_duplicate_names_rejected(self):
        with pytest.raises(JobError, match="duplicate"):
            run_batch(
                [_job(name="x"), _job(name="x")],
                BatchOptions(jobs=1),
                runner=_ok_runner(),
            )

    def test_cyclic_after_rejected(self):
        jobs = [
            _job(name="a", after=("b",)),
            _job(name="b", after=("a",)),
        ]
        with pytest.raises(JobError, match="cycle"):
            run_batch(jobs, BatchOptions(jobs=1), runner=_ok_runner())

    def test_inprocess_fault_error_retries_then_succeeds(self):
        """The injectable 'error' fault exercises the real retry path."""
        job = _job(
            name="quickstart",
            setup=QUICKSTART_SETUP,
            target="app_nil_r",
            config={"kind": "auto", "a": "list", "b": "New.list"},
            old=("list",),
            rename={"kind": "prefix", "value": "New."},
            env_fingerprint=fingerprint_source(QUICKSTART_SETUP),
        )
        plan = FaultPlan({"app_nil_r": {0: "error"}})
        report = run_batch(
            [job], BatchOptions(jobs=1, fault_plan=plan, backoff_s=0.0)
        )
        outcome = report.outcomes[0]
        assert (outcome.status, outcome.attempts) == (STATUS_OK, 2)

    def test_inprocess_crash_surfaces_as_worker_crash_and_retries(self):
        job = _job(
            name="quickstart",
            setup=QUICKSTART_SETUP,
            target="app_nil_r",
            config={"kind": "auto", "a": "list", "b": "New.list"},
            old=("list",),
            rename={"kind": "prefix", "value": "New."},
            env_fingerprint=fingerprint_source(QUICKSTART_SETUP),
        )
        plan = FaultPlan({"app_nil_r": {0: "crash"}})
        report = run_batch(
            [job], BatchOptions(jobs=1, fault_plan=plan, backoff_s=0.0)
        )
        outcome = report.outcomes[0]
        assert (outcome.status, outcome.attempts) == (STATUS_OK, 2)


# -- End to end, in process --------------------------------------------------


def _quickstart_job(**kwargs):
    spec = dict(
        name="quickstart/rev_app_distr",
        setup=QUICKSTART_SETUP,
        target="rev_app_distr",
        config={"kind": "auto", "a": "list", "b": "New.list"},
        old=("list",),
        rename={"kind": "prefix", "value": "New."},
        env_fingerprint=fingerprint_source(QUICKSTART_SETUP),
    )
    spec.update(kwargs)
    return RepairJob(**spec)


class TestEndToEnd:
    def test_repair_job_produces_full_record(self):
        report = run_batch([_quickstart_job()], BatchOptions(jobs=1))
        outcome = report.outcomes[0]
        assert outcome.status == STATUS_OK
        record = outcome.result
        assert record["new_name"] == "New.rev_app_distr"
        assert "New.rev_app_distr" in record["script"]
        assert [d["old"] for d in record["defined"]][-1] == "rev_app_distr"
        # With REPRO_DISABLE_KERNEL_CACHES=1 the arena counters stay 0,
        # so assert shape here; the warm-rerun test pins the delta to 0.
        assert record["kernel_delta"]["constructions"] >= 0
        assert record["analysis"] == []

    def test_cached_rerun_does_zero_kernel_work(self, tmp_path):
        """Unchanged batch + warm store => all cached, no transform work."""
        store = ResultStore(str(tmp_path))
        first = run_batch(
            [_quickstart_job()], BatchOptions(jobs=1, store=store)
        )
        assert first.outcomes[0].status == STATUS_OK
        before = KERNEL_STATS.snapshot()
        second = run_batch(
            [_quickstart_job()],
            BatchOptions(jobs=1, store=ResultStore(str(tmp_path))),
        )
        after = KERNEL_STATS.snapshot()
        assert [o.status for o in second.outcomes] == [STATUS_CACHED]
        assert after["constructions"] == before["constructions"]
        assert after["events"] == before["events"]

    def test_single_job_output_matches_vernacular_repair(self):
        """Service transparency: byte-identical to `Repair ... in ...`."""
        from repro.cases.quickstart import setup_environment
        from repro.kernel.pretty import pretty

        session = CommandSession(setup_environment())
        vernacular = session.execute(
            "Repair list New.list in rev_app_distr"
        ).results[0]
        job = _quickstart_job(
            rename={"kind": "suffix", "value": "'"}, new_name=None
        )
        record = run_batch([job], BatchOptions(jobs=1)).outcomes[0].result
        assert record["new_name"] == vernacular.new_name
        assert record["term"] == pretty(vernacular.term)
        assert record["type"] == pretty(vernacular.type)

    def test_timeout_reports_timeout_status(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "10")
        job = _quickstart_job()
        plan = FaultPlan({"rev_app_distr": {0: "hang"}})
        report = run_batch(
            [job],
            BatchOptions(jobs=1, fault_plan=plan, timeout_s=0.2),
        )
        outcome = report.outcomes[0]
        assert outcome.status == STATUS_TIMEOUT
        assert outcome.attempts == 1


# -- The subprocess pool -----------------------------------------------------


class TestParallelPool:
    def test_crash_injection_does_not_poison_the_pool(self, tmp_path):
        """One worker crashes; its job retries; unrelated jobs complete."""
        from repro.service.cases import six_case_jobs

        jobs = [
            j
            for j in six_case_jobs()
            if j.name.startswith("refactor/") or j.name == "galois/cork"
        ]
        assert len(jobs) == 3
        plan = FaultPlan({"demorgan_1": {0: "crash"}})
        report = run_batch(
            jobs,
            BatchOptions(
                jobs=2,
                store=ResultStore(str(tmp_path)),
                fault_plan=plan,
                timeout_s=120,
                backoff_s=0.0,
            ),
        )
        statuses = {o.job.name: o.status for o in report.outcomes}
        assert statuses == {
            "refactor/demorgan_1": STATUS_OK,
            "refactor/demorgan_2": STATUS_OK,
            "galois/cork": STATUS_OK,
        }
        assert report.outcome("refactor/demorgan_1").attempts == 2
        assert report.outcome("refactor/demorgan_2").attempts == 1

    def test_unretried_crashes_fail_and_cascade(self, tmp_path):
        from repro.service.cases import six_case_jobs

        jobs = [j for j in six_case_jobs() if j.name.startswith("binary/")]
        plan = FaultPlan({"add": {0: "crash", 1: "crash", 2: "crash"}})
        report = run_batch(
            jobs,
            BatchOptions(jobs=2, fault_plan=plan, retries=2, backoff_s=0.0,
                         timeout_s=120),
        )
        statuses = {o.job.name: o.status for o in report.outcomes}
        assert statuses == {
            "binary/slow_add": STATUS_FAILED,
            "binary/slow_add_n_Sm": STATUS_SKIPPED,
        }


# -- The CLI -----------------------------------------------------------------


class TestCli:
    def _manifest(self, tmp_path):
        manifest = {
            "batch": "unit",
            "jobs": [
                {
                    "name": "quickstart/rev_app_distr",
                    "setup": QUICKSTART_SETUP,
                    "target": "rev_app_distr",
                    "config": {"kind": "auto", "a": "list", "b": "New.list"},
                    "old": ["list"],
                    "rename": {"kind": "prefix", "value": "New."},
                }
            ],
        }
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(manifest))
        return str(path)

    def test_manifest_run_writes_report(self, tmp_path, capsys):
        from repro.service.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                self._manifest(tmp_path),
                "--jobs", "1",
                "--store", str(tmp_path / "store"),
                "--report", str(report_path),
            ]
        )
        assert code == 0
        table = capsys.readouterr().out
        assert "quickstart/rev_app_distr" in table
        assert "1 ok" in table
        report = json.loads(report_path.read_text())
        assert report["outcomes"][0]["status"] == STATUS_OK
        assert report["jobs"] == 1

    def test_second_run_is_all_cached(self, tmp_path, capsys):
        from repro.service.cli import main

        manifest = self._manifest(tmp_path)
        store = str(tmp_path / "store")
        assert main([manifest, "--jobs", "1", "--store", store]) == 0
        capsys.readouterr()
        assert main([manifest, "--jobs", "1", "--store", store]) == 0
        assert "1 cached" in capsys.readouterr().out

    def test_bad_manifest_is_a_usage_error(self, tmp_path, capsys):
        from repro.service.cli import main

        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main([str(path), "--no-store"]) == 2
        assert "non-empty 'jobs'" in capsys.readouterr().err

    def test_manifest_and_six_cases_are_exclusive(self, tmp_path):
        from repro.service.cli import main

        with pytest.raises(SystemExit):
            main([self._manifest(tmp_path), "--six-cases"])
        with pytest.raises(SystemExit):
            main([])

    def test_failed_batch_exits_nonzero(self, tmp_path, capsys):
        from repro.service.cli import main

        code = main(
            [
                self._manifest(tmp_path),
                "--no-store",
                "--fault-plan",
                json.dumps({"rev_app_distr": {"0": "error"}}),
                "--retries", "0",
            ]
        )
        assert code == 1
        assert "1 failed" in capsys.readouterr().out


# -- The Repair Batch vernacular command -------------------------------------


class TestRepairBatchCommand:
    def test_cold_batch_repairs_in_dependency_order(self):
        from repro.cases.quickstart import setup_environment

        session = CommandSession(setup_environment())
        result = session.execute(
            "Repair Batch list New.list in rev_app_distr app_assoc prefix New"
        )
        assert "2 ok" in result.summary
        assert session.env.has_constant("New.rev_app_distr")
        assert session.env.has_constant("New.app_assoc")
        report = result.report
        assert [o.status for o in report.outcomes] == [STATUS_OK, STATUS_OK]
        # rev_app_distr depends on app_assoc: the edge must be inferred.
        assert report.outcome("rev_app_distr").job.after == ("app_assoc",)

    def test_warm_batch_replays_from_store(self, tmp_path):
        from repro.cases.quickstart import setup_environment

        store_dir = str(tmp_path)
        first = CommandSession(
            setup_environment(), store=ResultStore(store_dir)
        )
        first.execute("Repair Batch list New.list in rev_app_distr prefix New")
        second = CommandSession(
            setup_environment(), store=ResultStore(store_dir)
        )
        result = second.execute(
            "Repair Batch list New.list in rev_app_distr prefix New"
        )
        assert [o.status for o in result.report.outcomes] == [STATUS_CACHED]
        assert second.env.has_constant("New.rev_app_distr")
        # Replayed constants are usable by later commands.
        followup = second.execute("Decompile New.rev_app_distr")
        assert "New.rev_app_distr" in followup.text

    def test_failed_target_skips_dependents(self, monkeypatch):
        from repro.cases.quickstart import setup_environment

        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            json.dumps({"app_assoc": {"0": "error", "1": "error", "2": "error"}}),
        )
        session = CommandSession(setup_environment())
        result = session.execute(
            "Repair Batch list New.list in rev_app_distr app_assoc prefix New"
        )
        statuses = {o.job.name: o.status for o in result.report.outcomes}
        assert statuses == {
            "app_assoc": STATUS_FAILED,
            "rev_app_distr": STATUS_SKIPPED,
        }

    def test_usage_errors(self):
        from repro.cases.quickstart import setup_environment

        session = CommandSession(setup_environment())
        with pytest.raises(CommandError, match="usage: Repair Batch"):
            session.execute("Repair Batch list New.list in prefix New")
        with pytest.raises(CommandError, match="usage: Repair Batch"):
            session.execute("Repair Batch list New.list")


class TestRunLineNumbers:
    def test_error_reports_script_line_number(self):
        from repro.cases.quickstart import setup_environment

        session = CommandSession(setup_environment())
        script = "\n".join(
            [
                "(* comment *)",
                "Configure list New.list",
                "",
                "Bogus command here",
            ]
        )
        with pytest.raises(CommandError, match=r"line 4: unknown command"):
            session.run(script)

    def test_clean_scripts_are_unaffected(self):
        from repro.cases.quickstart import setup_environment

        session = CommandSession(setup_environment())
        results = session.run(
            "(* setup *)\nConfigure list New.list\nRepair list New.list in app_nil_r\n"
        )
        assert len(results) == 2


# -- Worker subprocess entry point -------------------------------------------


class TestWorkerMain:
    def test_worker_reads_stdin_writes_record(self):
        import subprocess

        payload = _quickstart_job().payload()
        out = subprocess.run(
            [sys.executable, "-m", "repro.service.worker"],
            input=json.dumps({"payload": payload, "attempt": 0}),
            capture_output=True,
            text=True,
            timeout=120,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
            },
        )
        assert out.returncode == 0
        record = json.loads(out.stdout.strip().splitlines()[-1])
        assert record["status"] == "ok"
        assert record["new_name"] == "New.rev_app_distr"
        assert record["schema_version"] == SCHEMA_VERSION
