"""Section 6.2 end to end: lists to packed vectors to vectors at an index."""


from repro.kernel import Context, check, mentions_global, nf, pretty
from repro.syntax.parser import parse


class TestDevoidStep:
    def test_everything_ported_to_packed(self, ornament_scenario):
        names = {r.old_name for r in ornament_scenario.packed_results}
        assert {"zip", "zip_with", "zip_with_is_zip", "zip_preserves_length"} <= names

    def test_ported_statements_mention_sigma(self, ornament_scenario):
        env = ornament_scenario.env
        ty = env.constant("Packed.zip_with_is_zip").type
        assert mentions_global(ty, "sigT")
        assert mentions_global(ty, "vector")
        assert not mentions_global(ty, "list")

    def test_packed_zip_computes(self, ornament_scenario):
        env = ornament_scenario.env
        out = nf(
            env,
            parse(
                env,
                """
                Packed.zip nat bool
                  (ornament.dep_constr_1 nat 1 (ornament.dep_constr_0 nat))
                  (ornament.dep_constr_1 bool true (ornament.dep_constr_0 bool))
                """,
            ),
        )
        rendered = pretty(out, env=env)
        assert "existT" in rendered
        assert "vcons" in rendered

    def test_equivalence_proved(self, ornament_scenario):
        from repro.kernel import typecheck_closed

        eqv = ornament_scenario.config.equivalence
        typecheck_closed(ornament_scenario.env, eqv.section)
        typecheck_closed(ornament_scenario.env, eqv.retraction)

    def test_promote_forget_roundtrip(self, ornament_scenario):
        env = ornament_scenario.env
        out = nf(
            env,
            parse(
                env,
                "ornament.forget nat (ornament.promote nat "
                "(cons nat 1 (cons nat 2 (nil nat))))",
            ),
        )
        assert out == nf(env, parse(env, "cons nat 1 (cons nat 2 (nil nat))"))


class TestUnpackStep:
    def test_final_lemma_statement(self, ornament_scenario):
        # The Section 6.2.2 goal: vectors at a *particular* length.
        env = ornament_scenario.env
        ty = env.constant("zip_with_is_zip_vect").type
        rendered = pretty(ty, env=env)
        assert "vector A n" in rendered
        assert "vector B n" in rendered
        assert not mentions_global(ty, "sigT")

    def test_final_lemma_checks(self, ornament_scenario):
        env = ornament_scenario.env
        decl = env.constant("zip_with_is_zip_vect")
        check(env, Context.empty(), decl.body, decl.type)

    def test_zipv_computes_at_fixed_length(self, ornament_scenario):
        env = ornament_scenario.env
        out = nf(
            env,
            parse(
                env,
                """
                zipv nat bool 2
                  (vcons nat 4 1 (vcons nat 7 0 (vnil nat)))
                  (vcons bool true 1 (vcons bool false 0 (vnil bool)))
                """,
            ),
        )
        rendered = pretty(out, env=env)
        assert rendered.count("vcons") == 2

    def test_zipv_with_agrees_with_zipv(self, ornament_scenario):
        env = ornament_scenario.env
        a = nf(
            env,
            parse(
                env,
                "zipv_with nat bool 1 (vcons nat 3 0 (vnil nat)) "
                "(vcons bool false 0 (vnil bool))",
            ),
        )
        b = nf(
            env,
            parse(
                env,
                "zipv nat bool 1 (vcons nat 3 0 (vnil nat)) "
                "(vcons bool false 0 (vnil bool))",
            ),
        )
        assert a == b

    def test_unpack_coherence_present(self, ornament_scenario):
        env = ornament_scenario.env
        decl = env.constant("unpack_coherence")
        check(env, Context.empty(), decl.body, decl.type)

    def test_length_invariant_ported(self, ornament_scenario):
        env = ornament_scenario.env
        assert env.has_constant("Packed.zip_preserves_length")
        assert env.has_constant("length_pi")
