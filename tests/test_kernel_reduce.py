"""Reduction: beta, iota, delta, frozen constants, normal forms."""

import pytest

from repro.kernel import (
    App,
    Const,
    Elim,
    Environment,
    Ind,
    Lam,
    Rel,
    SET,
    beta_reduce,
    nf,
    whnf,
)
from repro.kernel.reduce import unfold_constant
from repro.syntax.parser import parse
from repro.stdlib.natlib import nat_of_int


def num(k):
    return nat_of_int(k)


class TestWhnf:
    def test_beta_redex(self, env_basic):
        term = App(Lam("x", Ind("nat"), Rel(0)), num(1))
        assert whnf(env_basic, term) == num(1)

    def test_nested_beta(self, env_basic):
        term = App(
            App(Lam("x", Ind("nat"), Lam("y", Ind("nat"), Rel(1))), num(1)),
            num(2),
        )
        assert whnf(env_basic, term) == num(1)

    def test_delta_unfolds_constants(self, env_basic):
        term = parse(env_basic, "pred 3")
        assert whnf(env_basic, term) == num(2)

    def test_delta_disabled(self, env_basic):
        term = parse(env_basic, "pred 3")
        result = whnf(env_basic, term, delta=False)
        head, _args = result, None
        assert isinstance(term, App)
        assert result == term  # stuck without unfolding pred

    def test_frozen_constant_not_unfolded(self, env_basic):
        term = parse(env_basic, "pred 3")
        result = whnf(env_basic, term, frozen=frozenset({"pred"}))
        assert result == term

    def test_iota_on_constructor(self, env_basic):
        term = Elim(
            "nat",
            Lam("_", Ind("nat"), Ind("nat")),
            (num(7), Lam("p", Ind("nat"), Lam("IH", Ind("nat"), Rel(0)))),
            num(0),
        )
        assert whnf(env_basic, term) == num(7)

    def test_whnf_does_not_reduce_under_binders(self, env_basic):
        inner_redex = App(Lam("x", Ind("nat"), Rel(0)), num(1))
        term = Lam("y", Ind("nat"), inner_redex)
        assert whnf(env_basic, term) == term

    def test_stuck_on_variable(self, env_basic):
        term = Elim(
            "nat",
            Lam("_", Ind("nat"), Ind("nat")),
            (num(0), Lam("p", Ind("nat"), Lam("IH", Ind("nat"), Rel(0)))),
            Rel(3),
        )
        out = whnf(env_basic, term)
        assert isinstance(out, Elim)
        assert out.scrut == Rel(3)


class TestNf:
    def test_nf_computes_addition(self, env_basic):
        assert nf(env_basic, parse(env_basic, "add 2 2")) == num(4)

    def test_nf_reduces_under_binders(self, env_basic):
        term = Lam("y", Ind("nat"), App(Lam("x", Ind("nat"), Rel(0)), num(1)))
        assert nf(env_basic, term) == Lam("y", Ind("nat"), num(1))

    def test_nf_without_delta_keeps_constants(self, env_basic):
        term = parse(env_basic, "fun (n : nat) => add n 0")
        out = nf(env_basic, term, delta=False)
        # add is stuck without unfolding, so the term is unchanged.
        assert out == term

    def test_nf_idempotent(self, env_lists):
        term = parse(env_lists, "rev nat (cons nat 1 (cons nat 2 (nil nat)))")
        once = nf(env_lists, term)
        assert nf(env_lists, once) == once

    def test_functional_recursion(self, env_basic):
        # mul uses add in its step case; deep reduction must terminate.
        assert nf(env_basic, parse(env_basic, "mul 3 4")) == num(12)


class TestBetaReduce:
    def test_pure_beta_no_env(self):
        term = App(Lam("x", SET, Rel(0)), Const("c"))
        assert beta_reduce(term) == Const("c")

    def test_beta_leaves_constants(self, env_basic):
        term = parse(env_basic, "pred 1")
        assert beta_reduce(term) == term


class TestUnfoldConstant:
    def test_unfold_single_constant(self, env_basic):
        term = parse(env_basic, "pred")
        out = unfold_constant(env_basic, term, "pred")
        assert out == env_basic.constant("pred").body

    def test_unfold_missing_body_raises(self, env_basic):
        env = Environment()
        env.assume("ax", SET)
        with pytest.raises(Exception):
            unfold_constant(env, Const("ax"), "ax")
