"""FrameStream under slow writers: dribbled bytes and mid-frame deadlines.

The pool reads worker frames with :class:`FrameStream`, which must
survive a peer that writes a frame one byte at a time across many
``select`` wakeups, and must keep its parser state intact when a
deadline expires with a frame half-delivered — the next read (with a
fresh deadline) picks up exactly where the stream left off.
"""

import os
import threading
import time

import pytest

from repro.service.proto import (
    FrameStream,
    FrameTimeout,
    StreamClosed,
    encode_frame,
)


def _dribble(fd, data, delay=0.0, start=None, done=None):
    """Write ``data`` to ``fd`` one byte at a time from a thread."""

    def run():
        if start is not None:
            start.wait()
        for i in range(len(data)):
            os.write(fd, data[i : i + 1])
            if delay:
                time.sleep(delay)
        if done is not None:
            done.set()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


@pytest.fixture
def pipe():
    read_fd, write_fd = os.pipe()
    yield read_fd, write_fd
    for fd in (read_fd, write_fd):
        try:
            os.close(fd)
        except OSError:
            pass


class TestSlowWriter:
    def test_byte_at_a_time_frame(self, pipe):
        """A frame dribbled byte-by-byte parses across select wakeups."""
        read_fd, write_fd = pipe
        message = {"event": "result", "status": "ok", "n": 42}
        thread = _dribble(write_fd, encode_frame(message), delay=0.001)
        stream = FrameStream(read_fd)
        frame = stream.read_frame(deadline=time.monotonic() + 30)
        assert frame == message
        thread.join(timeout=10)

    def test_two_frames_dribbled_with_noise_between(self, pipe):
        """Noise lines between dribbled frames are skipped, not parsed."""
        read_fd, write_fd = pipe
        first = {"event": "ready"}
        second = {"event": "result", "status": "ok"}
        data = (
            encode_frame(first)
            + b"worker log line, not a frame\n"
            + encode_frame(second)
        )
        thread = _dribble(write_fd, data, delay=0.0005)
        stream = FrameStream(read_fd)
        deadline = time.monotonic() + 30
        assert stream.read_frame(deadline=deadline) == first
        assert stream.read_frame(deadline=deadline) == second
        thread.join(timeout=10)

    def test_deadline_mid_frame_preserves_parser_state(self, pipe):
        """A timeout with half a frame buffered does not corrupt parsing.

        The writer sends the header and part of the body, then stalls
        past the deadline.  ``read_frame`` raises :class:`FrameTimeout`;
        once the writer resumes, a second call with a new deadline
        returns the frame intact.
        """
        read_fd, write_fd = pipe
        message = {"event": "result", "status": "ok", "payload": "x" * 64}
        data = encode_frame(message)
        split = len(data) // 2
        resume = threading.Event()

        def writer():
            os.write(write_fd, data[:split])
            resume.wait(timeout=30)
            os.write(write_fd, data[split:])

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()

        stream = FrameStream(read_fd)
        # First half arrives, then nothing: the deadline must fire.
        with pytest.raises(FrameTimeout):
            stream.read_frame(deadline=time.monotonic() + 0.2)
        # Resume the writer; the same stream finishes the frame.
        resume.set()
        frame = stream.read_frame(deadline=time.monotonic() + 30)
        assert frame == message
        thread.join(timeout=10)

    def test_repeated_timeouts_then_completion(self, pipe):
        """Several expired deadlines in a row still leave the stream sound."""
        read_fd, write_fd = pipe
        message = {"event": "ready", "pid": 7}
        data = encode_frame(message)
        stream = FrameStream(read_fd)

        # Feed one byte between timeouts; every retry resumes cleanly.
        for i in range(3):
            os.write(write_fd, data[i : i + 1])
            with pytest.raises(FrameTimeout):
                stream.read_frame(deadline=time.monotonic() + 0.05)
        os.write(write_fd, data[3:])
        frame = stream.read_frame(deadline=time.monotonic() + 30)
        assert frame == message

    def test_deadline_already_past(self, pipe):
        """An already-expired deadline raises without blocking."""
        read_fd, _ = pipe
        stream = FrameStream(read_fd)
        started = time.monotonic()
        with pytest.raises(FrameTimeout):
            stream.read_frame(deadline=started - 1.0)
        assert time.monotonic() - started < 1.0

    def test_eof_mid_frame_is_stream_closed(self, pipe):
        """A writer dying mid-frame surfaces as StreamClosed, not a hang."""
        read_fd, write_fd = pipe
        data = encode_frame({"event": "result", "status": "ok"})
        os.write(write_fd, data[: len(data) // 2])
        os.close(write_fd)
        stream = FrameStream(read_fd)
        with pytest.raises(StreamClosed):
            stream.read_frame(deadline=time.monotonic() + 5)

    def test_timeout_then_eof(self, pipe):
        """Timeout first, then peer death: both surface in order."""
        read_fd, write_fd = pipe
        data = encode_frame({"event": "ready"})
        os.write(write_fd, data[:4])
        stream = FrameStream(read_fd)
        with pytest.raises(FrameTimeout):
            stream.read_frame(deadline=time.monotonic() + 0.05)
        os.close(write_fd)
        with pytest.raises(StreamClosed):
            stream.read_frame(deadline=time.monotonic() + 5)
