"""The unpack machinery (Section 6.2, second configuration) in isolation."""

import pytest

from repro.core.search.unpack import declare_unpack_support
from repro.kernel import Context, check, nf, pretty
from repro.stdlib import make_env
from repro.syntax.parser import parse


@pytest.fixture(scope="module")
def env():
    env = make_env(lists=True, vectors=True)
    declare_unpack_support(env)
    return env


class TestVectorCast:
    def test_cast_along_refl_is_identity(self, env):
        out = nf(
            env,
            parse(
                env,
                "vector_cast nat 1 1 (eq_refl nat 1) "
                "(vcons nat 5 0 (vnil nat))",
            ),
        )
        assert out == nf(env, parse(env, "vcons nat 5 0 (vnil nat)"))

    def test_cast_is_the_identity_generalized(self, env):
        # Section 6.2.1: "the identity function generalized over any
        # equal index".
        ty = env.constant("vector_cast").type
        rendered = pretty(ty, env=env)
        assert "eq nat m n" in rendered
        assert rendered.endswith("vector T n")


class TestUnpack:
    def test_unpack_packed_vector(self, env):
        out = nf(
            env,
            parse(
                env,
                """
                unpack nat 2
                  (existT nat (fun (k : nat) => vector nat k) 2
                     (vcons nat 1 1 (vcons nat 2 0 (vnil nat))))
                  (eq_refl nat 2)
                """,
            ),
        )
        expected = nf(
            env, parse(env, "vcons nat 1 1 (vcons nat 2 0 (vnil nat))")
        )
        assert out == expected

    def test_unpack_requires_matching_proof(self, env):
        from repro.kernel import TypeError_

        bad = parse(
            env,
            """
            fun (v : vector nat 1) =>
              unpack nat 2
                (existT nat (fun (k : nat) => vector nat k) 1 v)
                (eq_refl nat 2)
            """,
        )
        with pytest.raises(TypeError_):
            from repro.kernel import typecheck_closed

            typecheck_closed(env, bad)


class TestCoherence:
    def test_coherence_statement_shape(self, env):
        ty = env.constant("unpack_coherence").type
        rendered = pretty(ty, env=env)
        assert "eq_trans" in rendered
        assert "f_equal" in rendered

    def test_coherence_checks(self, env):
        decl = env.constant("unpack_coherence")
        check(env, Context.empty(), decl.body, decl.type)

    def test_idempotent_declaration(self, env):
        # declare_unpack_support is safe to call twice.
        declare_unpack_support(env)
        assert env.has_constant("unpack_coherence")
