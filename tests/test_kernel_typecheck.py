"""The type checker: inference rules, eliminator typing, errors."""

import pytest

from repro.kernel import (
    App,
    Constr,
    Context,
    Elim,
    Environment,
    Ind,
    Lam,
    PROP,
    Pi,
    Rel,
    SET,
    Sort,
    TypeError_,
    check,
    infer,
    infer_sort,
    type_sort,
    typecheck_closed,
)
from repro.syntax.parser import parse
from repro.stdlib.natlib import nat_of_int


class TestBasicRules:
    def test_sort_of_prop_and_set(self, env_basic):
        assert infer(env_basic, Context.empty(), PROP) == Sort(1)
        assert infer(env_basic, Context.empty(), SET) == Sort(1)

    def test_sort_of_type(self, env_basic):
        assert infer(env_basic, Context.empty(), type_sort(3)) == Sort(4)

    def test_variable_lookup(self, env_basic):
        ctx = Context.empty().push("n", Ind("nat"))
        assert infer(env_basic, ctx, Rel(0)) == Ind("nat")

    def test_variable_lookup_lifts(self, env_basic):
        ctx = (
            Context.empty()
            .push("A", SET)
            .push("x", Rel(0))
        )
        assert infer(env_basic, ctx, Rel(0)) == Rel(1)

    def test_unbound_variable(self, env_basic):
        with pytest.raises(Exception):
            infer(env_basic, Context.empty(), Rel(0))

    def test_lambda_and_app(self, env_basic):
        term = parse(env_basic, "(fun (n : nat) => S n) 3")
        assert typecheck_closed(env_basic, term) == Ind("nat")

    def test_pi_impredicative_prop(self, env_basic):
        term = parse(env_basic, "forall (A : Prop), A -> A")
        assert infer(env_basic, Context.empty(), term) == PROP

    def test_pi_predicative_type(self, env_basic):
        # The domain Type1 lives in Type2, so the product does too.
        term = parse(env_basic, "forall (A : Type1), A -> A")
        assert infer(env_basic, Context.empty(), term) == Sort(2)

    def test_application_type_mismatch(self, env_basic):
        with pytest.raises(TypeError_):
            typecheck_closed(env_basic, parse(env_basic, "S true"))

    def test_application_of_non_function(self, env_basic):
        with pytest.raises(TypeError_):
            typecheck_closed(env_basic, App(nat_of_int(0), nat_of_int(0)))

    def test_check_uses_cumulativity(self, env_basic):
        # nat : Set <= Type2.
        check(env_basic, Context.empty(), Ind("nat"), type_sort(2))

    def test_infer_sort_rejects_terms(self, env_basic):
        with pytest.raises(TypeError_):
            infer_sort(env_basic, Context.empty(), nat_of_int(1))


class TestEliminatorTyping:
    def test_simple_elim(self, env_basic):
        term = parse(
            env_basic,
            "fun (n : nat) => Elim[nat](n; fun (_ : nat) => bool)"
            "{ true, fun (p : nat) (IH : bool) => negb IH }",
        )
        ty = typecheck_closed(env_basic, term)
        assert ty == Pi("n", Ind("nat"), Ind("bool"))

    def test_dependent_motive(self, env_basic):
        # A proof by induction has a dependent motive.
        term = parse(
            env_basic,
            "fun (n : nat) => Elim[nat](n; fun (k : nat) => eq nat k k)"
            "{ eq_refl nat O, "
            "fun (p : nat) (IH : eq nat p p) => eq_refl nat (S p) }",
        )
        typecheck_closed(env_basic, term)

    def test_wrong_case_count(self, env_basic):
        term = Elim("nat", Lam("_", Ind("nat"), Ind("nat")), (nat_of_int(0),), nat_of_int(0))
        with pytest.raises(TypeError_):
            typecheck_closed(env_basic, term)

    def test_wrong_case_type(self, env_basic):
        term = parse(
            env_basic,
            "Elim[nat](O; fun (_ : nat) => nat)"
            "{ true, fun (p : nat) (IH : nat) => IH }",
        )
        with pytest.raises(TypeError_):
            typecheck_closed(env_basic, term)

    def test_bad_motive_shape(self, env_basic):
        term = Elim("nat", nat_of_int(0), (nat_of_int(0), nat_of_int(0)), nat_of_int(0))
        with pytest.raises(TypeError_):
            typecheck_closed(env_basic, term)

    def test_indexed_elim_vector(self, env_lists):
        # Dependent elimination over an indexed family.
        term = parse(
            env_lists,
            """
            fun (T : Type1) (n : nat) (v : vector T n) =>
              Elim[vector](v;
                  fun (m : nat) (w : vector T m) => nat)
                { O,
                  fun (t : T) (m : nat) (w : vector T m) (IH : nat) =>
                    S IH }
            """,
        )
        ty = typecheck_closed(env_lists, term)
        binders_ok = isinstance(ty, Pi)
        assert binders_ok

    def test_elim_scrutinee_of_wrong_type(self, env_basic):
        term = Elim(
            "nat",
            Lam("_", Ind("nat"), Ind("nat")),
            (nat_of_int(0), Lam("p", Ind("nat"), Lam("IH", Ind("nat"), Rel(0)))),
            Constr("bool", 0),
        )
        with pytest.raises(TypeError_):
            typecheck_closed(env_basic, term)


class TestStoredConstants:
    def test_every_global_is_well_typed(self, env_full):
        """The populated environment invariant: everything checks."""
        for decl in env_full.constants():
            if decl.body is not None:
                check(env_full, Context.empty(), decl.body, decl.type)

    def test_define_rejects_duplicates(self, env_basic):
        env = Environment()
        env.assume("x", SET)
        with pytest.raises(Exception):
            env.assume("x", SET)
