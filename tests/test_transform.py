"""The Figure 10 transformation: each rule, unification, and Figure 11."""

import pytest

from repro.core import (
    AlignedSide,
    Configuration,
    TransformCache,
    Transformer,
    transform_term,
)
from repro.core.search.swap import swap_configuration
from repro.kernel import (
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    mentions_global,
    nf,
    typecheck_closed,
)
from repro.stdlib import declare_list_type, make_env
from repro.syntax.parser import parse


@pytest.fixture(scope="module")
def swap_env():
    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    return env


@pytest.fixture(scope="module")
def swap_config(swap_env):
    return swap_configuration(swap_env, "list", "New.list", prove=False)


class TestRules:
    def test_dep_constr_rule(self, swap_env, swap_config):
        # nil (constructor 0 of the old type) maps to constructor 1 of
        # the new type — Figure 8.
        term = parse(swap_env, "list.nil nat")
        out = transform_term(swap_env, swap_config, term)
        assert out == Constr("New.list", 1).app(Ind("nat"))

    def test_dep_constr_with_args(self, swap_env, swap_config):
        term = parse(swap_env, "list.cons nat 1 (list.nil nat)")
        out = transform_term(swap_env, swap_config, term)
        head_new_cons = Constr("New.list", 0)
        assert out == head_new_cons.app(
            Ind("nat"),
            parse(swap_env, "1"),
            Constr("New.list", 1).app(Ind("nat")),
        )

    def test_equivalence_rule_on_types(self, swap_env, swap_config):
        term = parse(swap_env, "forall (l : list nat), eq (list nat) l l")
        out = transform_term(swap_env, swap_config, term)
        assert not mentions_global(out, "list")
        assert mentions_global(out, "New.list")

    def test_dep_elim_rule_swaps_cases(self, swap_env, swap_config):
        term = parse(
            swap_env,
            "fun (l : list nat) => "
            "Elim[list](l; fun (_ : list nat) => nat)"
            "{ O, fun (t : nat) (r : list nat) (IH : nat) => S IH }",
        )
        out = transform_term(swap_env, swap_config, term)
        body = out.body
        assert isinstance(body, Elim)
        assert body.ind == "New.list"
        # The nil case (O) is now the *second* case.
        assert body.cases[1] == parse(swap_env, "O")

    def test_structural_rule_leaves_unrelated(self, swap_env, swap_config):
        term = parse(swap_env, "fun (n : nat) => S n")
        assert transform_term(swap_env, swap_config, term) == term

    def test_const_map_replaces_dependencies(self, swap_env):
        config = swap_configuration(swap_env, "list", "New.list", prove=False)
        config.const_map["app"] = "New.app.fake"
        term = Const("app")
        out = transform_term(swap_env, config, term)
        assert out == Const("New.app.fake")

    def test_transform_well_typed_output(self, swap_env, swap_config):
        term = swap_env.constant("app").body
        out = transform_term(swap_env, swap_config, term)
        ty = typecheck_closed(swap_env, out)
        assert mentions_global(ty, "New.list")


class TestFigure11:
    """The four-step append example of Figure 11."""

    def test_append_end_to_end(self, swap_env, swap_config):
        original = swap_env.constant("app").body
        transformed = transform_term(swap_env, swap_config, original)
        # Step 4 of Figure 11: the final term eliminates over New.list
        # with the cases swapped back into declaration order.
        binders_body = transformed
        while isinstance(binders_body, Lam):
            binders_body = binders_body.body
        assert isinstance(binders_body, Elim)
        assert binders_body.ind == "New.list"
        # Behaviour is preserved up to the equivalence: appending the
        # transformed lists agrees with transforming the appended list.
        xs = parse(swap_env, "list.cons nat 1 (list.cons nat 2 (list.nil nat))")
        ys = parse(swap_env, "list.cons nat 3 (list.nil nat)")
        old_append = nf(swap_env, Const("app").app(Ind("nat"), xs, ys))
        transformer = Transformer(swap_env, swap_config)
        lhs = nf(swap_env, transformer(old_append))
        new_append = transformed
        rhs = nf(
            swap_env,
            new_append.app(Ind("nat"), transformer(xs), transformer(ys)),
        )
        assert lhs == rhs


class TestCache:
    def test_cache_hits_accumulate(self, swap_env):
        config = swap_configuration(swap_env, "list", "New.list", prove=False)
        cache = TransformCache()
        transformer = Transformer(swap_env, config, cache=cache)
        term = swap_env.constant("rev_app_distr").body
        transformer(term)
        assert cache.misses > 0
        first_misses = cache.misses
        transformer(term)
        assert cache.hits > 0
        assert cache.misses == first_misses  # fully cached second time

    def test_cache_disabled(self, swap_env):
        config = swap_configuration(swap_env, "list", "New.list", prove=False)
        cache = TransformCache(enabled=False)
        transformer = Transformer(swap_env, config, cache=cache)
        transformer(swap_env.constant("app").body)
        assert cache.size == 0
        assert cache.hits == 0


class TestConfigurationChecks:
    def test_sides_must_agree_on_counts(self, swap_env):
        from repro.core import ConfigError

        with pytest.raises(ConfigError):
            Configuration(
                a=AlignedSide(swap_env, "list"),
                b=AlignedSide(swap_env, "nat"),
            )

    def test_invalid_permutation_rejected(self, swap_env):
        from repro.core import ConfigError

        with pytest.raises(ConfigError):
            AlignedSide(swap_env, "list", perm=(0, 0))

    def test_figure12_check_passes(self, swap_env):
        config = swap_configuration(swap_env, "list", "New.list")
        config.check(swap_env)

    def test_reversed_configuration_round_trips(self, swap_env):
        config = swap_configuration(swap_env, "list", "New.list")
        back = config.reversed()
        term = parse(swap_env, "list.cons nat 1 (list.nil nat)")
        there = transform_term(swap_env, config, term)
        here = transform_term(swap_env, back, there)
        assert here == term
