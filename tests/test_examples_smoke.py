"""Every shipped example runs to completion as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "replica_benchmark.py",
        "vectors_from_lists.py",
        "binary_numbers.py",
        "records_from_tuples.py",
        "constr_refactor.py",
        "command_workflow.py",
    } <= names
