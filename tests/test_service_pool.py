"""The framed worker protocol and the persistent warm-worker pool."""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.service import (
    BatchOptions,
    FaultPlan,
    STATUS_OK,
    STATUS_TIMEOUT,
    WorkerPool,
    run_batch,
    subprocess_runner,
)
from repro.service.job import fingerprint_source, result_digest
from repro.service.cases import six_case_jobs
from repro.service.faults import JobTimeout, WorkerCrash
from repro.service.job import RepairJob
from repro.service.pool import (
    default_max_jobs,
    default_pool,
    kill_process_group,
    worker_environ,
)
from repro.service.proto import (
    FrameParser,
    FrameStream,
    ProtocolError,
    encode_frame,
    last_frame,
    parse_frames,
)

QUICKSTART_SETUP = "repro.service.cases:quickstart_env"


def _quickstart_job(**kwargs):
    spec = dict(
        name="quickstart/rev_app_distr",
        setup=QUICKSTART_SETUP,
        target="rev_app_distr",
        config={"kind": "auto", "a": "list", "b": "New.list"},
        old=("list",),
        rename={"kind": "prefix", "value": "New."},
        env_fingerprint=fingerprint_source(QUICKSTART_SETUP),
    )
    spec.update(kwargs)
    return RepairJob(**spec)


def _refactor_jobs():
    return [
        j
        for j in six_case_jobs()
        if j.name.startswith("refactor/") or j.name == "galois/cork"
    ]


# -- The framed protocol ------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        message = {"op": "result", "record": {"status": "ok", "n": 3}}
        frames = parse_frames(encode_frame(message))
        assert frames == [message]

    def test_json_body_is_the_last_stdout_line(self):
        """Back-compat: naive last-line parses keep working."""
        text = encode_frame({"a": 1}).decode()
        assert json.loads(text.strip().splitlines()[-1]) == {"a": 1}

    def test_noise_lines_are_skipped(self):
        """Even noise that *is* valid ``{``-prefixed JSON is ignored —
        the case the old reversed stdout scan silently mis-parsed."""
        blob = (
            b"booting...\n"
            b'{"status": "lying", "retryable": true}\n'
            + encode_frame({"op": "result", "real": True})
            + b'{"another": "lie"}\n'
        )
        assert last_frame(blob.decode()) == {"op": "result", "real": True}

    def test_multiple_frames_in_order(self):
        blob = encode_frame({"n": 1}) + b"noise\n" + encode_frame({"n": 2})
        assert parse_frames(blob) == [{"n": 1}, {"n": 2}]

    def test_partial_feed_reassembles(self):
        whole = encode_frame({"key": "v" * 300})
        parser = FrameParser()
        got = None
        for i in range(len(whole)):
            parser.feed(whole[i : i + 1])
            frame = parser.next_frame()
            if frame is not None:
                got = frame
        assert got == {"key": "v" * 300}

    def test_last_frame_none_without_frames(self):
        assert last_frame("") is None
        assert last_frame('{"status": "ok"}\nplain noise\n') is None

    def test_undecodable_body_is_a_protocol_error(self):
        parser = FrameParser()
        parser.feed(b"@repro-frame 3\nxyz\n")
        with pytest.raises(ProtocolError):
            parser.next_frame()

    def test_non_object_body_is_a_protocol_error(self):
        parser = FrameParser()
        parser.feed(b"@repro-frame 7\n[1,2,3]\n")
        with pytest.raises(ProtocolError):
            parser.next_frame()

    def test_absurd_length_is_a_protocol_error(self):
        parser = FrameParser()
        parser.feed(b"@repro-frame 999999999999\n")
        with pytest.raises(ProtocolError):
            parser.next_frame()

    def test_header_lookalike_noise_is_skipped(self):
        blob = b"@repro-frame not-a-length\n" + encode_frame({"ok": 1})
        assert parse_frames(blob) == [{"ok": 1}]


# -- One-shot worker: noisy stdout --------------------------------------------


class TestNoisyWorker:
    def test_noisy_worker_record_still_parsed(self, monkeypatch):
        """A worker printing ``{``-prefixed JSON diagnostics around its
        record must not confuse the runner (satellite regression)."""
        monkeypatch.setenv(
            "REPRO_WORKER_NOISE", '{"status": "failed", "error": "noise"}'
        )
        runner = subprocess_runner()
        record = runner(_quickstart_job().payload(), 0, 120)
        assert record["status"] == STATUS_OK
        assert record["new_name"] == "New.rev_app_distr"


# -- Serial executor: SIGALRM guard -------------------------------------------


class TestAlarmGuard:
    def test_off_main_thread_timeout_warns_and_runs(self):
        from repro.service.scheduler import _job_alarm

        ran = []

        def work():
            with pytest.warns(RuntimeWarning, match="SIGALRM"):
                with _job_alarm(5.0):
                    ran.append(True)

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert ran == [True]

    def test_no_timeout_requested_never_warns(self):
        import warnings as warnings_mod

        from repro.service.scheduler import _job_alarm

        def work():
            with warnings_mod.catch_warnings():
                warnings_mod.simplefilter("error")
                with _job_alarm(None):
                    pass

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()

    def test_main_thread_timeout_still_fires(self):
        from repro.service.scheduler import _job_alarm

        with pytest.raises(JobTimeout):
            with _job_alarm(0.05):
                time.sleep(5)


# -- Process-group reaping ----------------------------------------------------


def _proc_gone(pid):
    """True when ``pid`` is dead (missing or a zombie awaiting reap)."""
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split()[2] == "Z"
    except OSError:
        return True


class TestProcessGroupReaping:
    def test_killpg_reaps_grandchildren(self):
        """A worker that spawned children cannot leak them past the
        timeout kill (satellite: ``start_new_session`` + ``killpg``)."""
        script = (
            "import subprocess, sys, time\n"
            "child = subprocess.Popen("
            "[sys.executable, '-c', 'import time; time.sleep(60)'])\n"
            "print(child.pid, flush=True)\n"
            "time.sleep(60)\n"
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
            start_new_session=True,
        )
        grandchild = int(process.stdout.readline())
        assert not _proc_gone(grandchild)
        kill_process_group(process)
        assert process.poll() is not None
        deadline = time.monotonic() + 10
        while not _proc_gone(grandchild):
            assert time.monotonic() < deadline, "grandchild leaked"
            time.sleep(0.05)


# -- The serve loop, driven over raw frames -----------------------------------


def _spawn_serve_worker():
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service.worker", "--serve"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=worker_environ(),
        start_new_session=True,
    )


class TestServeLoop:
    def test_ping_job_warm_reuse_and_shutdown(self):
        process = _spawn_serve_worker()
        try:
            stream = FrameStream(process.stdout.fileno())
            deadline = time.monotonic() + 120

            def ask(message):
                process.stdin.write(encode_frame(message))
                process.stdin.flush()
                return stream.read_frame(deadline)

            assert ask({"op": "ping"}) == {"op": "pong", "served": 0}

            payload = _quickstart_job().payload()
            first = ask({"op": "job", "payload": payload, "attempt": 0})
            assert first["op"] == "result"
            assert first["record"]["env_boot"] == "scratch"

            second = ask({"op": "job", "payload": payload, "attempt": 0})
            assert second["record"]["env_boot"] == "warm"
            assert result_digest(second["record"]) == result_digest(
                first["record"]
            )

            # A changed fingerprint means the resident env is stale.
            changed = dict(payload, env_fingerprint="0" * 64)
            stale = ask({"op": "job", "payload": changed, "attempt": 0})
            assert stale == {"op": "stale", "setup": payload["setup"]}

            assert ask({"op": "shutdown"}) == {"op": "bye", "served": 2}
            assert process.wait(timeout=10) == 0
        finally:
            kill_process_group(process)

    def test_unknown_op_is_reported_not_fatal(self):
        process = _spawn_serve_worker()
        try:
            stream = FrameStream(process.stdout.fileno())
            deadline = time.monotonic() + 30
            process.stdin.write(encode_frame({"op": "dance"}))
            process.stdin.flush()
            reply = stream.read_frame(deadline)
            assert reply["op"] == "error"
            process.stdin.write(encode_frame({"op": "ping"}))
            process.stdin.flush()
            assert stream.read_frame(deadline)["op"] == "pong"
        finally:
            kill_process_group(process)


# -- The pool -----------------------------------------------------------------


class TestWorkerPool:
    def test_warm_reuse_with_digest_parity_vs_subprocess(self):
        payload = _quickstart_job().payload()
        with WorkerPool(1) as pool:
            first = pool.run_job(payload, 0, 120)
            second = pool.run_job(payload, 0, 120)
        assert first["env_boot"] in ("scratch", "snapshot")
        assert second["env_boot"] == "warm"
        hermetic = subprocess_runner()(payload, 0, 120)
        assert (
            result_digest(first)
            == result_digest(second)
            == result_digest(hermetic)
        )
        stats = pool.stats()
        assert stats["spawned"] == 1
        assert stats["jobs"] == 2
        assert stats["warm_jobs"] == 1

    def test_fingerprint_change_retires_worker_and_redispatches(self):
        payload = _quickstart_job().payload()
        with WorkerPool(1) as pool:
            first = pool.run_job(payload, 0, 120)
            assert first["status"] == STATUS_OK
            # Simulate an edited setup module: same job, new fingerprint.
            changed = dict(payload, env_fingerprint="0" * 64)
            second = pool.run_job(changed, 0, 120)
            assert second["status"] == STATUS_OK
            # The fresh worker re-booted; nothing was served warm.
            assert second["env_boot"] in ("scratch", "snapshot")
        stats = pool.stats()
        assert stats["stale_retired"] == 1
        assert stats["spawned"] == 2

    def test_recycle_after_max_jobs_per_worker(self):
        payload = _quickstart_job().payload()
        with WorkerPool(1, max_jobs_per_worker=1) as pool:
            first = pool.run_job(payload, 0, 120)
            second = pool.run_job(payload, 0, 120)
        assert first["status"] == second["status"] == STATUS_OK
        # Each worker retired after its single job: no warm reuse.
        assert second["env_boot"] in ("scratch", "snapshot")
        stats = pool.stats()
        assert stats["spawned"] == 2
        assert stats["recycled"] == 2

    def test_injected_hang_kills_only_the_stuck_worker(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "60")
        jobs = _refactor_jobs()
        plan = FaultPlan({"demorgan_1": {0: "hang"}})
        with WorkerPool(2, fault_plan=plan) as pool:
            with pytest.raises(JobTimeout):
                pool.run_job(
                    [j for j in jobs if j.name == "refactor/demorgan_1"][0]
                    .payload(),
                    0,
                    8,
                )
            # Only the stuck worker died; the pool keeps serving — and
            # keeps environments resident across the kill.
            ok = pool.run_job(
                [j for j in jobs if j.name == "refactor/demorgan_2"][0]
                .payload(),
                0,
                120,
            )
            assert ok["status"] == STATUS_OK
            again = pool.run_job(
                [j for j in jobs if j.name == "refactor/demorgan_2"][0]
                .payload(),
                0,
                120,
            )
            assert again["status"] == STATUS_OK
            assert again["env_boot"] == "warm"
        stats = pool.stats()
        assert stats["timeout_kills"] == 1
        assert stats["spawned"] == 2

    def test_mid_batch_crash_leaves_warm_workers_finishing(self, tmp_path):
        """Injected crash kills one warm worker; its job retries on a
        fresh one and the rest of the batch completes (scheduler path)."""
        jobs = _refactor_jobs()
        plan = FaultPlan({"demorgan_1": {0: "crash"}})
        report = run_batch(
            jobs,
            BatchOptions(
                jobs=2,
                fault_plan=plan,
                timeout_s=120,
                backoff_s=0.0,
                pool=True,
            ),
        )
        statuses = {o.job.name: o.status for o in report.outcomes}
        assert statuses == {
            "refactor/demorgan_1": STATUS_OK,
            "refactor/demorgan_2": STATUS_OK,
            "galois/cork": STATUS_OK,
        }
        assert report.outcome("refactor/demorgan_1").attempts == 2
        assert report.pool is not None
        assert report.pool["crashes"] == 1

    def test_batch_digests_match_subprocess_mode(self):
        jobs = _refactor_jobs()
        pooled = run_batch(
            jobs, BatchOptions(jobs=2, timeout_s=120, pool=True)
        )
        hermetic = run_batch(
            jobs, BatchOptions(jobs=2, timeout_s=120, pool=False)
        )
        assert pooled.ok and hermetic.ok
        assert hermetic.pool is None
        digests = lambda report: {  # noqa: E731
            o.job.name: result_digest(o.result) for o in report.outcomes
        }
        assert digests(pooled) == digests(hermetic)

    def test_timeout_via_scheduler_reports_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "60")
        jobs = _refactor_jobs()
        plan = FaultPlan({"demorgan_1": {0: "hang"}})
        report = run_batch(
            jobs,
            BatchOptions(
                jobs=2, fault_plan=plan, timeout_s=8, pool=True
            ),
        )
        assert report.outcome("refactor/demorgan_1").status == STATUS_TIMEOUT
        assert report.outcome("galois/cork").status == STATUS_OK
        assert report.pool["timeout_kills"] == 1

    def test_shutdown_is_idempotent_and_blocks_new_checkouts(self):
        pool = WorkerPool(1)
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.run_job(_quickstart_job().payload(), 0, 10)

    def test_stale_bounce_limit_surfaces_as_crash(self, monkeypatch):
        """If fresh workers keep answering stale (impossible for a real
        fingerprint mismatch, simulated by patching), the pool gives up
        instead of spinning."""
        payload = dict(_quickstart_job().payload())
        pool = WorkerPool(1)

        class AlwaysStale:
            jobs = 0

            def request(self, message, deadline=None):
                return {"op": "stale", "setup": payload["setup"]}

            def retire(self):
                pass

            def destroy(self):
                pass

        monkeypatch.setattr(pool, "_checkout", lambda: AlwaysStale())
        with pytest.raises(WorkerCrash, match="stale"):
            pool.run_job(payload, 0, 10)
        pool.shutdown()


# -- Defaults and CLI wiring --------------------------------------------------


class TestPoolKnobs:
    def test_default_pool_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL", raising=False)
        assert default_pool() is True
        for value in ("0", "false", "no", "off", "OFF"):
            monkeypatch.setenv("REPRO_POOL", value)
            assert default_pool() is False
        monkeypatch.setenv("REPRO_POOL", "1")
        assert default_pool() is True

    def test_batch_options_resolve_pool_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "0")
        assert BatchOptions(jobs=2).pool is False
        monkeypatch.setenv("REPRO_POOL", "1")
        assert BatchOptions(jobs=2).pool is True
        assert BatchOptions(jobs=2, pool=False).pool is False

    def test_default_max_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_MAX_JOBS", raising=False)
        assert default_max_jobs() == 64
        monkeypatch.setenv("REPRO_POOL_MAX_JOBS", "7")
        assert default_max_jobs() == 7
        monkeypatch.setenv("REPRO_POOL_MAX_JOBS", "junk")
        assert default_max_jobs() == 64

    def test_cli_pool_flags(self):
        from repro.service.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["--six-cases"]).pool is None
        assert parser.parse_args(["--six-cases", "--pool"]).pool is True
        assert parser.parse_args(["--six-cases", "--no-pool"]).pool is False
        with pytest.raises(SystemExit):
            parser.parse_args(["--six-cases", "--pool", "--no-pool"])

    def test_worker_environ_carries_knobs(self):
        plan = FaultPlan({"t": {0: "error"}})
        environ = worker_environ(plan, "/tmp/snap.json")
        assert environ["REPRO_FAULT_PLAN"] == plan.to_env()
        assert environ["REPRO_SNAPSHOT"] == "/tmp/snap.json"
        src = Path(__file__).resolve().parents[1] / "src"
        assert str(src) in environ["PYTHONPATH"].split(os.pathsep)
