"""Change-impact plans: verdicts, evidence chains, the store, the CLI.

The verdict lattice is the contract the service scheduler relies on:
only ``unaffected`` (RA401) licenses skipping a job, and an unaffected
entry's digests must match what a force-run worker would produce (the
differential gate in :mod:`repro.service.planner` compares them byte
for byte).
"""

import json

import pytest

from repro.analysis.impact import (
    PLAN_SCHEMA_VERSION,
    VERDICT_OPAQUE,
    VERDICT_SIGNATURE,
    VERDICT_TRANSPORT,
    VERDICT_UNAFFECTED,
    ImpactEntry,
    ImpactError,
    PlanStore,
    RepairPlan,
    build_plan,
    ensure_plan,
    main,
    plan_key,
)
from repro.cases.quickstart import setup_environment
from repro.service.synth import SMALL_WIDTH, wide_env_small
from repro.syntax.parser import parse

OLD = ("list",)


class TestVerdicts:
    def test_quickstart_classification(self):
        plan = build_plan(setup_environment(), OLD)
        assert plan.verdict("list") == VERDICT_TRANSPORT
        assert plan.entries["list"].chain == ("list",)
        assert plan.verdict("rev") == VERDICT_TRANSPORT
        assert plan.verdict("nat") == VERDICT_UNAFFECTED
        assert plan.verdict("add") == VERDICT_UNAFFECTED
        assert plan.entries["add"].chain == ()

    def test_chains_are_wellformed_reference_paths(self):
        env = wide_env_small()
        refs = env.declaration_refs()
        plan = build_plan(env, OLD)
        chained = [e for e in plan.entries.values() if len(e.chain) > 1]
        assert chained
        for entry in chained:
            assert entry.chain[0] == entry.name
            assert entry.chain[-1] in OLD
            for here, there in zip(entry.chain, entry.chain[1:]):
                assert there in refs[here]

    def test_wide_chain_is_certified_unaffected(self):
        plan = build_plan(wide_env_small(), OLD)
        for i in range(SMALL_WIDTH):
            assert plan.verdict(f"wide.d{i}") == VERDICT_UNAFFECTED
        counts = plan.counts()
        assert counts[VERDICT_UNAFFECTED] >= SMALL_WIDTH
        assert counts[VERDICT_TRANSPORT] >= 1

    def test_bodyless_type_mention_is_signature_only(self):
        env = setup_environment()
        env.assume("sig_probe", parse(env, "list nat"))
        plan = build_plan(env, OLD)
        entry = plan.entries["sig_probe"]
        assert entry.verdict == VERDICT_SIGNATURE
        assert entry.term_digest is None

    def test_opaque_constant_reaching_change_is_never_certified(self):
        env = setup_environment()
        env.define("opaque_probe", parse(env, "rev"), opaque=True)
        plan = build_plan(env, OLD)
        assert plan.verdict("opaque_probe") == VERDICT_OPAQUE

    def test_allowed_configuration_constant_is_opaque(self):
        plan = build_plan(setup_environment(), OLD, allow=("rev",))
        entry = plan.entries["rev"]
        assert entry.verdict == VERDICT_OPAQUE
        assert "bridges" in entry.reason


class TestPlanArtifact:
    def _plan(self):
        return build_plan(
            wide_env_small(), OLD, fingerprint="deadbeef"
        )

    def test_digest_is_deterministic_and_content_addressed(self):
        a, b = self._plan(), self._plan()
        assert a.digest == b.digest
        shifted = build_plan(
            wide_env_small(), OLD, fingerprint="cafebabe"
        )
        assert shifted.digest != a.digest

    def test_roundtrip_preserves_digest_and_entries(self):
        plan = self._plan()
        restored = RepairPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        )
        assert restored.digest == plan.digest
        assert restored.entries.keys() == plan.entries.keys()
        assert restored.fingerprint == "deadbeef"

    def test_tampered_artifact_is_rejected(self):
        raw = self._plan().to_dict()
        raw["entries"][0]["verdict"] = VERDICT_TRANSPORT
        with pytest.raises(ImpactError, match="digest mismatch"):
            RepairPlan.from_dict(raw)

    def test_unknown_schema_is_rejected(self):
        raw = self._plan().to_dict()
        raw["schema_version"] = PLAN_SCHEMA_VERSION + 1
        with pytest.raises(ImpactError, match="schema"):
            RepairPlan.from_dict(raw)

    def test_entry_validates_verdict_and_kind(self):
        with pytest.raises(ImpactError, match="verdict"):
            ImpactEntry(
                name="x",
                kind="constant",
                verdict="maybe",
                chain=(),
                reason="",
                def_digest="0",
            )
        with pytest.raises(ImpactError, match="kind"):
            ImpactEntry(
                name="x",
                kind="module",
                verdict=VERDICT_UNAFFECTED,
                chain=(),
                reason="",
                def_digest="0",
            )

    def test_report_and_render_carry_codes(self):
        plan = self._plan()
        codes = {d.code for d in plan.to_report().diagnostics}
        assert "RA401" in codes and "RA403" in codes
        rendering = plan.render()
        assert plan.digest[:12] in rendering
        assert "unaffected" in rendering
        # Unaffected entries are counted but not listed line by line.
        assert "wide.d0" not in rendering


class TestPlanStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = PlanStore(str(tmp_path))
        plan = build_plan(wide_env_small(), OLD, fingerprint="fp")
        key = plan_key("fp", OLD)
        assert store.get(key) is None
        store.put(key, plan)
        cached = store.get(key)
        assert cached is not None and cached.digest == plan.digest
        assert (store.hits, store.misses) == (1, 1)

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        store = PlanStore(str(tmp_path))
        plan = build_plan(wide_env_small(), OLD, fingerprint="fp")
        key = plan_key("fp", OLD)
        store.put(key, plan)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert store.get(key) is None

    def test_key_tracks_fingerprint_old_and_allow(self):
        base = plan_key("fp", OLD)
        assert base == plan_key("fp", OLD)
        assert base != plan_key("fp2", OLD)
        assert base != plan_key("fp", ("vector",))
        assert base != plan_key("fp", OLD, allow=("rev",))

    def test_ensure_plan_builds_env_only_on_miss(self, tmp_path):
        store = PlanStore(str(tmp_path))
        calls = []

        def factory():
            calls.append(1)
            return wide_env_small()

        first = ensure_plan("fp", OLD, factory, store=store)
        second = ensure_plan("fp", OLD, factory, store=store)
        assert first.digest == second.digest
        assert len(calls) == 1


class TestCli:
    SETUP = "repro.service.synth:wide_env_small"

    def test_json_plan_for_a_setup(self, capsys):
        assert main(
            ["--setup", self.SETUP, "--old", "list", "--no-store",
             "--json", "-"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        (entry,) = document["plans"]
        assert entry["setup"] == self.SETUP
        assert entry["counts"][VERDICT_UNAFFECTED] >= SMALL_WIDTH

    def test_sarif_rendering(self, tmp_path, capsys):
        out = tmp_path / "impact.sarif"
        assert main(
            ["--setup", self.SETUP, "--old", "list", "--no-store",
             "--sarif", str(out)]
        ) == 0
        capsys.readouterr()
        sarif = json.loads(out.read_text())
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"RA401", "RA402", "RA403", "RA404"} <= rules
        assert run["results"]
        levels = {r["level"] for r in run["results"]}
        assert "note" in levels

    def test_setup_requires_old(self, capsys):
        with pytest.raises(SystemExit):
            main(["--setup", self.SETUP])
        capsys.readouterr()

    def test_store_reuse_across_invocations(self, tmp_path, capsys):
        argv = [
            "--setup", self.SETUP, "--old", "list",
            "--store-dir", str(tmp_path), "--json", "-",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert list(tmp_path.glob("*.json"))
