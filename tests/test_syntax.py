"""Parser and pretty printer: grammar, resolution, round trips."""

import pytest

from repro.kernel import Constr, Ind, Lam, PROP, Pi, Rel, pretty
from repro.syntax.lexer import LexError, tokenize
from repro.syntax.parser import ParseError, parse, parse_in
from repro.stdlib.natlib import nat_of_int


class TestLexer:
    def test_tokenize_punctuation(self):
        kinds = [t.text for t in tokenize("( ) => -> , ; : # [ ] { }")[:-1]]
        assert kinds == ["(", ")", "=>", "->", ",", ";", ":", "#", "[", "]", "{", "}"]

    def test_qualified_identifiers(self):
        tokens = tokenize("Old.list.cons")
        assert tokens[0].text == "Old.list.cons"

    def test_comments_nest(self):
        tokens = tokenize("a (* x (* y *) z *) b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("(* oops")

    def test_numbers(self):
        tokens = tokenize("42")
        assert tokens[0].kind == "int"


class TestParser:
    def test_numerals_are_unary(self, env_basic):
        assert parse(env_basic, "3") == nat_of_int(3)

    def test_fun_and_forall(self, env_basic):
        term = parse(env_basic, "fun (n : nat) => n")
        assert term == Lam("n", Ind("nat"), Rel(0))
        term = parse(env_basic, "forall (n : nat), nat")
        assert term == Pi("n", Ind("nat"), Ind("nat"))

    def test_arrow_sugar(self, env_basic):
        assert parse(env_basic, "nat -> nat") == Pi("_", Ind("nat"), Ind("nat"))

    def test_arrow_is_right_associative(self, env_basic):
        a = parse(env_basic, "nat -> nat -> nat")
        b = parse(env_basic, "nat -> (nat -> nat)")
        assert a == b

    def test_grouped_binders_share_type(self, env_basic):
        a = parse(env_basic, "fun (n m : nat) => n")
        b = parse(env_basic, "fun (n : nat) (m : nat) => n")
        assert a == b

    def test_constructor_by_index(self, env_basic):
        assert parse(env_basic, "nat#1 nat#0") == nat_of_int(1)

    def test_constructor_by_name(self, env_basic):
        assert parse(env_basic, "S O") == nat_of_int(1)

    def test_ambiguous_constructor_rejected(self, env_basic):
        from repro.stdlib import declare_list_type
        from repro.kernel import Environment
        from repro.stdlib.prelude import declare_prelude
        from repro.stdlib.natlib import declare_nat

        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        declare_list_type(env, "list")
        declare_list_type(env, "New.list", swapped=True)
        with pytest.raises(ParseError):
            parse(env, "fun (T : Type1) => cons")

    def test_qualified_constructor_accepted(self, env_basic):
        from repro.kernel import Environment
        from repro.stdlib import declare_list_type
        from repro.stdlib.prelude import declare_prelude
        from repro.stdlib.natlib import declare_nat

        env = Environment()
        declare_prelude(env)
        declare_nat(env)
        declare_list_type(env, "list")
        declare_list_type(env, "New.list", swapped=True)
        term = parse(env, "New.list.cons")
        assert term == Constr("New.list", 0)

    def test_elim_syntax(self, env_basic):
        term = parse(
            env_basic,
            "Elim[nat](O; fun (_ : nat) => nat){ O, fun (p IH : nat) => p }",
        )
        assert term.ind == "nat"
        assert len(term.cases) == 2

    def test_unknown_identifier(self, env_basic):
        with pytest.raises(ParseError):
            parse(env_basic, "frobnicate")

    def test_parse_in_binds_frees(self, env_basic):
        term = parse_in(env_basic, "S n", ("n",))
        assert term == Constr("nat", 1).app(Rel(0))

    def test_sorts(self, env_basic):
        assert parse(env_basic, "Prop") == PROP
        assert parse(env_basic, "Type3").level == 3


class TestRoundTrip:
    CASES = [
        "fun (n : nat) => S n",
        "forall (n : nat), eq nat n n",
        "fun (P : nat -> Prop) (H : forall (n : nat), P n) => H 2",
        "fun (n : nat) => Elim[nat](n; fun (k : nat) => nat)"
        "{ O, fun (p : nat) (IH : nat) => S IH }",
        "forall (A : Prop) (B : Prop), and A B -> A",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_print_parse_roundtrip(self, env_basic, source):
        term = parse(env_basic, source)
        rendered = pretty(term, env=env_basic)
        assert parse(env_basic, rendered) == term

    def test_roundtrip_of_stdlib_bodies(self, env_lists):
        # Every stdlib definition round-trips through the printer.
        for name in ["add", "mul", "app", "rev", "length", "zip"]:
            body = env_lists.constant(name).body
            rendered = pretty(body, env=env_lists)
            assert parse(env_lists, rendered) == body
