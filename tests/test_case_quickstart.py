"""Section 2 end to end: Figures 1, 2, 3 and the Repair module command."""

from repro.decompile.qtac import TInduction, TIntros
from repro.decompile.run import run_script
from repro.kernel import Context, check, mentions_global, nf
from repro.syntax.parser import parse


class TestRepairedProof:
    def test_statement_is_over_new_list(self, quickstart_scenario):
        s = quickstart_scenario
        assert not mentions_global(s.result.type, "list")
        assert mentions_global(s.result.type, "New.list")

    def test_proof_checks(self, quickstart_scenario):
        s = quickstart_scenario
        check(s.env, Context.empty(), s.result.term, s.result.type)

    def test_dependencies_updated_automatically(self, quickstart_scenario):
        # The paper: "the dependencies (rev, ++, app_assoc, and
        # app_nil_r) have also been updated automatically".
        s = quickstart_scenario
        for dep in ["New.rev", "New.app", "New.app_assoc", "New.app_nil_r"]:
            assert s.env.has_constant(dep)


class TestFigure2Script:
    def test_script_shape_matches_figure_2(self, quickstart_scenario):
        s = quickstart_scenario
        text = s.script_text
        assert "induction x as [a l IHl|]." in text
        assert "rewrite" in text
        assert "New.app_assoc" in text
        assert "New.app_nil_r" in text
        assert text.count("reflexivity.") == 2

    def test_script_structure(self, quickstart_scenario):
        s = quickstart_scenario
        kinds = [type(t) for t in s.script.steps]
        assert TIntros in kinds
        assert TInduction in kinds

    def test_script_replays_and_checks(self, quickstart_scenario):
        s = quickstart_scenario
        proof = run_script(s.env, s.result.type, s.script)
        check(s.env, Context.empty(), proof, s.result.type)


class TestRepairModule:
    def test_whole_module_repaired(self, quickstart_scenario):
        # app/rev were already repaired as dependencies of the single
        # lemma; the module pass covers the rest of the development.
        s = quickstart_scenario
        for name in ["app", "rev", "length", "zip", "zip_with"]:
            assert s.env.has_constant(f"New.{name}")

    def test_old_list_removed(self, quickstart_scenario):
        # "When we are done, we can get rid of Old.list entirely."
        s = quickstart_scenario
        assert not s.env.has_inductive("list")

    def test_new_functions_compute(self, quickstart_scenario):
        s = quickstart_scenario
        out = nf(
            s.env,
            parse(
                s.env,
                "New.rev nat (New.list.cons nat 1 "
                "(New.list.cons nat 2 (New.list.nil nat)))",
            ),
        )
        expected = nf(
            s.env,
            parse(
                s.env,
                "New.list.cons nat 2 (New.list.cons nat 1 (New.list.nil nat))",
            ),
        )
        assert out == expected

    def test_one_candidate_not_720(self, quickstart_scenario):
        # The paper contrasts 1 proof-term candidate against 720 script
        # permutations: the search considered exactly one mapping.
        from repro.core.search.swap import find_constructor_mappings

        # list was removed from this env by the scenario; re-check on a
        # fresh setup.
        from repro.cases.quickstart import setup_environment

        env = setup_environment()
        mappings = list(find_constructor_mappings(env, "list", "New.list"))
        assert len(mappings) == 1
