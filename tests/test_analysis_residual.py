"""The residual-reference detector: direct, transitive, and allowed."""

import pytest

from repro.analysis import Severity, find_residuals, tainted_globals
from repro.kernel.term import App, Const, Ind, Sort
from repro.stdlib import make_env
from repro.syntax.parser import parse


@pytest.fixture(scope="module")
def env():
    return make_env(lists=True, vectors=False)


class TestTaintClosure:
    def test_old_global_is_tainted(self, env):
        assert "list" in tainted_globals(env, ["list"])

    def test_direct_dependency_is_tainted(self, env):
        # rev's body eliminates lists, so rev is tainted.
        tainted = tainted_globals(env, ["list"])
        assert "rev" in tainted
        assert "list_rect" in tainted

    def test_transitive_dependency_is_tainted(self):
        env = make_env(lists=True, vectors=False)
        env.assume(
            "wraps_rev",
            parse(env, "forall (T : Set) (l : list T), list T"),
        )
        tainted = tainted_globals(env, ["list"])
        assert "wraps_rev" in tainted

    def test_unrelated_globals_are_clean(self, env):
        tainted = tainted_globals(env, ["list"])
        assert "nat" not in tainted
        assert "add" not in tainted


class TestFindResiduals:
    def test_true_negative_nat_arithmetic(self, env):
        term = parse(env, "add (S O) (S O)")
        assert find_residuals(env, term, ["list"]) == []

    def test_true_positive_direct_reference(self, env):
        diags = find_residuals(env, Ind("list"), ["list"])
        assert [d.code for d in diags] == ["RA101"]
        assert diags[0].severity is Severity.ERROR

    def test_direct_reference_inside_a_body(self, env):
        body = env.constant("rev").body
        codes = {d.code for d in find_residuals(env, body, ["list"])}
        assert "RA101" in codes

    def test_true_positive_transitive_reference(self, env):
        # `rev` does not *name* list, but its delta-unfolding does.
        diags = find_residuals(env, Const("rev"), ["list"])
        assert [d.code for d in diags] == ["RA102"]
        assert diags[0].severity is Severity.ERROR

    def test_allowlist_downgrades_to_info(self, env):
        diags = find_residuals(
            env, Const("rev"), ["list"], allow=frozenset({"rev"})
        )
        assert [d.code for d in diags] == ["RA102"]
        assert diags[0].severity is Severity.INFO

    def test_allowlist_does_not_downgrade_direct(self, env):
        # The allowlist is for configuration constants, never for the
        # old type itself.
        diags = find_residuals(
            env, Ind("list"), ["list"], allow=frozenset({"list"})
        )
        assert [d.code for d in diags] == ["RA101"]
        assert diags[0].severity is Severity.ERROR

    def test_allowed_subject_downgrades_its_own_direct_mentions(self, env):
        # An int_to_Zp-style equivalence constant must name the old type
        # directly; when the analyzed *subject* is itself allowlisted,
        # those hits are expected bridging, not residuals.
        diags = find_residuals(
            env,
            Ind("list"),
            ["list"],
            allow=frozenset({"equiv_fn"}),
            subject="equiv_fn",
        )
        assert [d.code for d in diags] == ["RA101"]
        assert diags[0].severity is Severity.INFO
        assert "allowed configuration constant" in diags[0].message

    def test_unallowed_subject_direct_mentions_stay_errors(self, env):
        diags = find_residuals(
            env,
            Ind("list"),
            ["list"],
            allow=frozenset({"other_helper"}),
            subject="equiv_fn",
        )
        assert [d.code for d in diags] == ["RA101"]
        assert diags[0].severity is Severity.ERROR

    def test_path_points_into_the_term(self, env):
        term = App(Const("length"), Sort(0))
        diags = find_residuals(env, term, ["list"])
        assert len(diags) == 1
        assert diags[0].path == ("fn",)
