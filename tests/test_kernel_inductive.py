"""Inductive declarations: case types, iota, positivity, indexed families."""

import pytest

from repro.kernel import (
    App,
    ConstructorDecl,
    Environment,
    Ind,
    InductiveDecl,
    InductiveError,
    Lam,
    PROP,
    Pi,
    SET,
    case_type,
    constructor_args_and_indices,
    nf,
    pretty,
    type_sort,
)
from repro.kernel.inductive import analyze_recursive_args
from repro.stdlib.natlib import nat_of_int
from repro.syntax.parser import parse


class TestDeclaration:
    def test_arity_of_parametrized_family(self, env_lists):
        decl = env_lists.inductive("vector")
        arity = decl.arity()
        assert isinstance(arity, Pi)

    def test_constructor_type_closed(self, env_lists):
        decl = env_lists.inductive("list")
        cons_ty = decl.constructor_type(1)
        # forall (T : Type1), T -> list T -> list T
        binders_ok = isinstance(cons_ty, Pi)
        assert binders_ok
        assert cons_ty.domain == type_sort(1)

    def test_constructor_index_lookup(self, env_lists):
        decl = env_lists.inductive("list")
        assert decl.constructor_index("cons") == 1
        with pytest.raises(InductiveError):
            decl.constructor_index("snoc")

    def test_positivity_rejects_negative_occurrence(self):
        env = Environment()
        bad = InductiveDecl(
            name="bad",
            params=(),
            indices=(),
            sort=SET,
            constructors=(
                ConstructorDecl(
                    "mk", args=(("f", Pi("_", Ind("bad"), Ind("bad"))),)
                ),
            ),
        )
        with pytest.raises(InductiveError):
            env.declare_inductive(bad)

    def test_functional_recursive_arg_is_positive(self, env_basic):
        # Briefly declare a W-ish type: recursion under an arrow is fine
        # when the inductive is only in the codomain.
        env = Environment()
        from repro.stdlib.prelude import declare_prelude
        from repro.stdlib.natlib import declare_nat

        declare_prelude(env)
        declare_nat(env)
        tree = InductiveDecl(
            name="tree",
            params=(),
            indices=(),
            sort=SET,
            constructors=(
                ConstructorDecl("leaf", args=()),
                ConstructorDecl(
                    "node",
                    args=(("kids", Pi("_", Ind("nat"), Ind("tree"))),),
                ),
            ),
        )
        env.declare_inductive(tree)
        # The recursor exists and its functional IH works.
        depth = parse(
            env,
            """
            fun (t : tree) =>
              Elim[tree](t; fun (_ : tree) => nat)
                { O,
                  fun (kids : nat -> tree) (IH : nat -> nat) =>
                    S (IH O) }
            """,
        )
        value = nf(
            env,
            App(
                depth,
                parse(env, "node (fun (n : nat) => node (fun (m : nat) => leaf))"),
            ),
        )
        assert value == nat_of_int(2)


class TestCaseTypes:
    def test_list_cons_case_interleaves_ih(self, env_lists):
        decl = env_lists.inductive("list")
        motive = Lam("l", Ind("list").app(Ind("nat")), PROP)
        ct = case_type(decl, 1, [Ind("nat")], motive)
        # forall (t : nat) (l : list nat), P l -> P (cons t l)
        assert isinstance(ct, Pi)
        assert ct.domain == Ind("nat")
        inner = ct.codomain
        assert inner.domain == Ind("list").app(Ind("nat"))

    def test_vector_case_tracks_indices(self, env_lists):
        decl = env_lists.inductive("vector")
        motive = parse(
            env_lists,
            "fun (n : nat) (v : vector nat n) => eq nat n n",
        )
        ct = case_type(decl, 1, [Ind("nat")], motive)
        rendered = pretty(ct, env=env_lists)
        assert "S" in rendered  # the conclusion is at index S n

    def test_constructor_args_and_indices_instantiates_params(self, env_lists):
        decl = env_lists.inductive("vector")
        args, indices = constructor_args_and_indices(decl, 1, [Ind("bool")])
        names = [name for name, _ in args]
        assert names == ["t", "n", "v"]
        assert args[0][1] == Ind("bool")

    def test_eq_param_instantiation_order(self, env_basic):
        # Regression: eq has two parameters (A, x); the result index must
        # instantiate to x, not A (this was a real bug).
        decl = env_basic.inductive("eq")
        _args, indices = constructor_args_and_indices(
            decl, 0, [Ind("nat"), nat_of_int(3)]
        )
        assert indices == (nat_of_int(3),)


class TestRecursiveArgs:
    def test_list_recursion_analysis(self, env_lists):
        decl = env_lists.inductive("list")
        rec = analyze_recursive_args(decl, 1)
        assert rec[0] is None  # the element
        assert rec[1] is not None  # the tail
        assert rec[1].inner_binders == 0

    def test_vector_recursion_has_index(self, env_lists):
        decl = env_lists.inductive("vector")
        rec = analyze_recursive_args(decl, 1)
        assert rec[2] is not None
        assert len(rec[2].indices) == 1


class TestIota:
    def test_iota_supplies_ih(self, env_basic):
        # Elim(S O) reduces to the successor case applied to O and the
        # recursively computed value.
        term = parse(
            env_basic,
            "Elim[nat](2; fun (_ : nat) => nat)"
            "{ 5, fun (p : nat) (IH : nat) => S IH }",
        )
        assert nf(env_basic, term) == nat_of_int(7)

    def test_iota_on_indexed_family(self, env_lists):
        term = parse(
            env_lists,
            """
            Elim[vector](vcons nat 9 0 (vnil nat);
                fun (m : nat) (w : vector nat m) => nat)
              { O,
                fun (t : nat) (m : nat) (w : vector nat m) (IH : nat) =>
                  S IH }
            """,
        )
        assert nf(env_lists, term) == nat_of_int(1)
