"""The HTTP front end, driven over real sockets against a subprocess.

One module-scoped server (2 warm workers, rate limiting off) serves
every test here; the drain test and the CLI leaked-worker regression
start their own processes.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
import uuid

import pytest

QUICKSTART_SPEC = {
    "name": "quickstart/rev_app_distr",
    "setup": "repro.service.cases:quickstart_env",
    "target": "rev_app_distr",
    "config": {"kind": "auto", "a": "list", "b": "New.list"},
    "old": ["list"],
    "rename": {"kind": "prefix", "value": "New."},
}


def _src_path():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _server_env(**extra):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        _src_path() + (os.pathsep + existing if existing else "")
    )
    env.update(extra)
    return env


def _spawn_server(*args, env=None):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server",
            "--port",
            "0",
            "--rate",
            "0",
            *args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env or _server_env(),
        start_new_session=True,
    )
    line = process.stdout.readline()
    try:
        info = json.loads(line)
        assert info["event"] == "listening"
    except Exception:
        process.kill()
        raise AssertionError(f"no listening line, got {line!r}")
    return process, info["port"]


def _call(port, method, path, body=None, timeout=120):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = str(tmp_path_factory.mktemp("server-store"))
    process, port = _spawn_server(
        "--workers", "2", "--store", store, "--quiet"
    )
    yield port
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=45)
    except subprocess.TimeoutExpired:
        process.kill()


class TestServerEndpoints:
    def test_healthz(self, server):
        status, payload = _call(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"

    def test_repair_roundtrip_and_cache(self, server):
        manifest = {"batch": "http", "jobs": [QUICKSTART_SPEC]}
        status, first = _call(server, "POST", "/v1/repair", manifest)
        assert status == 200
        assert first["counts"] == {"ok": 1}
        digest = first["outcomes"][0]["result_digest"]
        assert digest

        status, second = _call(server, "POST", "/v1/repair", manifest)
        assert status == 200
        assert second["counts"] == {"cached": 1}
        assert second["outcomes"][0]["result_digest"] == digest

    def test_http_digest_matches_vernacular_parity_chain(self, server):
        """The HTTP digest equals a direct in-process scheduler run's.

        The service suite holds the in-process scheduler digest equal
        to the ``Repair`` vernacular's output, so transitively every
        HTTP repair is digest-identical to the vernacular path.
        """
        from repro.service import BatchOptions, run_batch
        from repro.service.job import result_digest
        from repro.service.manifest import jobs_from_manifest
        from repro.service.scheduler import inprocess_runner

        manifest = {"batch": "parity", "jobs": [QUICKSTART_SPEC]}
        status, payload = _call(server, "POST", "/v1/repair", manifest)
        assert status == 200
        jobs = jobs_from_manifest(manifest, where="parity")
        expected = run_batch(
            jobs, BatchOptions(jobs=1), runner=inprocess_runner()
        )
        assert payload["outcomes"][0]["result_digest"] == result_digest(
            expected.outcomes[0].result
        )

    def test_async_repair_over_http(self, server):
        manifest = {
            "batch": "http-async",
            "jobs": [QUICKSTART_SPEC],
            "async": True,
        }
        status, payload = _call(server, "POST", "/v1/repair", manifest)
        assert status == 202
        poll = payload["poll"]
        deadline = time.monotonic() + 120
        state = {}
        while time.monotonic() < deadline:
            status, state = _call(server, "GET", poll)
            if state["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.1)
        assert state["state"] == "done"
        assert state["report"]["counts"] == {"cached": 1}

    def test_sessions_over_http(self, server):
        status, _ = _call(
            server, "POST", "/v1/sessions", {"name": "http-demo"}
        )
        assert status == 201
        status, payload = _call(
            server,
            "POST",
            "/v1/sessions/http-demo/command",
            {"script": "Repair list New.list in rev_app_distr."},
        )
        assert status == 200
        assert payload["results"][0]["new_names"] == ["rev_app_distr'"]
        status, _ = _call(server, "DELETE", "/v1/sessions/http-demo")
        assert status == 200

    def test_metrics_and_errors(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server}/metrics"
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            text = resp.read().decode()
        assert "repro_http_requests_total" in text
        assert "repro_server_queue_depth" in text
        status, payload = _call(server, "GET", "/nope")
        assert status == 404
        status, payload = _call(server, "PUT", "/healthz")
        assert status == 405


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self):
        process, port = _spawn_server("--workers", "2", "--no-store")
        assert _call(port, "GET", "/healthz")[0] == 200
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=45) == 0
        stderr = process.stderr.read()
        assert '"event": "drained"' in stderr


# -- The batch CLI's signal handling (regression: leaked workers) -------------


def _marked_processes(marker):
    """Pids of live processes whose environment carries ``marker``."""
    pids = []
    needle = marker.encode()
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/environ", "rb") as handle:
                if needle in handle.read():
                    pids.append(int(entry))
        except OSError:
            continue
    return pids


class TestServiceCliShutdown:
    def test_sigterm_kills_worker_process_groups(self, tmp_path):
        """SIGTERM mid-batch must not leak hung worker processes.

        A hang fault keeps two pool workers busy forever; the old
        behaviour unwound through the executor and blocked on those
        workers' pipes, leaking their process groups.  The handler now
        hard-kills every registered pool and exits 128+15.
        """
        manifest = tmp_path / "hang.json"
        manifest.write_text(
            json.dumps(
                {
                    "batch": "hang",
                    "jobs": [
                        dict(QUICKSTART_SPEC),
                        dict(
                            QUICKSTART_SPEC,
                            name="quickstart/rev",
                            target="rev",
                        ),
                    ],
                }
            )
        )
        marker = f"repro-shutdown-{uuid.uuid4().hex}"
        env = _server_env(
            REPRO_SHUTDOWN_TEST_MARKER=marker,
            REPRO_FAULT_HANG_S="600",
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                str(manifest),
                "--jobs",
                "2",
                "--no-store",
                "--fault-plan",
                json.dumps(
                    {
                        "rev_app_distr": {"0": "hang"},
                        "rev": {"0": "hang"},
                    }
                ),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            start_new_session=True,
        )
        try:
            # Wait until both workers exist (they inherit the marker).
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(_marked_processes(marker)) >= 3:  # CLI + workers
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("workers never spawned")
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 128 + signal.SIGTERM
            # Every marked process (CLI and workers alike) must be gone.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if not _marked_processes(marker):
                    break
                time.sleep(0.1)
            leaked = _marked_processes(marker)
            assert not leaked, f"leaked worker pids: {leaked}"
        finally:
            if process.poll() is None:
                try:
                    os.killpg(process.pid, signal.SIGKILL)
                except OSError:
                    pass
