#!/usr/bin/env python3
"""Quickstart: the paper's Section 2 walkthrough.

Swap the two constructors of ``list`` (Figure 1), then run::

    Repair Old.list New.list in rev_app_distr

The repair updates the proof *and* its dependencies (``rev``, ``++``,
``app_assoc``, ``app_nil_r``), the decompiler suggests a tactic script
(Figure 2), and the script replays against the repaired statement.
Finally the whole module is repaired at once and the old list removed.
"""

from repro import (
    RepairSession,
    configure,
    declare_list_type,
    make_env,
    pretty,
    print_script,
    decompile_to_script,
    run_script,
)


def main() -> None:
    # The development over Old.list: the standard library list with
    # app/rev/length and the lemmas of Section 2, all as checked proofs.
    env = make_env(lists=True, vectors=False)
    print("Old development:")
    print("  rev_app_distr :", pretty(env.constant("rev_app_distr").type, env=env))

    # The updated type of Figure 1 (right): constructors swapped.
    declare_list_type(env, "New.list", swapped=True)

    # Configure automatically: the search procedure discovers the
    # constructor mapping and proves the Figure 3 equivalence.
    config = configure(env, "list", "New.list")
    equivalence = config.equivalence
    print("\nDiscovered equivalence (Figure 3):")
    print("  swap   =", pretty(equivalence.f, env=env))
    print("  swap⁻¹ =", pretty(equivalence.g, env=env))

    # Repair Old.list New.list in rev_app_distr.
    session = RepairSession(
        env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
    )
    result = session.repair_constant("rev_app_distr")
    print("\nRepaired:", result)
    print("  new statement :", pretty(result.type, env=env))
    print("  dependencies  :", ", ".join(sorted(session.results)))

    # Decompile to a suggested tactic script (Figure 2) and replay it.
    script = decompile_to_script(env, result.term)
    print("\nSuggested script (Figure 2):")
    print(print_script(script, name=result.new_name))
    run_script(env, result.type, script)
    print("\nThe script replays and kernel-checks: OK")

    # Repair module; when we are done, we can get rid of Old.list.
    module = session.repair_module()
    session.remove_old()
    print("\nWhole module repaired:", ", ".join(str(r) for r in module))
    print("Old.list removed:", not env.has_inductive("list"))


if __name__ == "__main__":
    main()
