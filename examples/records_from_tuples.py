#!/usr/bin/env python3
"""Industrial use: tuples to records and back (Section 6.4, Figure 17).

The Galois workflow: port the compiler-generated ``cork`` over anonymous
nested tuples to named records, write ``corkLemma`` against the readable
record version, then port the proof *back* to the original tuples so it
composes with the solver-aided pipeline.  Bitvectors (``seq``/``bvAdd``/
``bvNat``) are implemented for real on top of binary naturals, so the
proof's ``reflexivity`` steps genuinely compute.
"""

from repro.cases.galois import run_scenario
from repro.kernel import pretty


def main() -> None:
    scenario = run_scenario()
    env = scenario.env

    print("cork ported to records:")
    print("  Record.cork :", pretty(scenario.cork_result.type, env=env))
    body = pretty(scenario.cork_result.term, env=env)
    print("  Record.cork =", body[:180], "..." if len(body) > 180 else "")

    print("\ncorkLemma written against the record version:")
    print(
        "  Record.corkLemma :",
        pretty(env.constant("Record.corkLemma").type, env=env),
    )

    print("\ncorkLemma ported back to the original tuples:")
    statement = pretty(scenario.cork_lemma_tuple.type, env=env)
    print("  corkLemma :", statement[:240], "...")
    print(
        "\n(the statement shows the projection chains `fst (snd c)` of the"
        "\n paper's Section 6.4.2, over the original Galois.Connection)"
    )


if __name__ == "__main__":
    main()
