#!/usr/bin/env python3
"""Vectors from lists (Section 6.2, ``Example.v``).

Starting from the list lemma ``zip_with_is_zip`` and a user-supplied
length invariant, the ornament configuration (Devoid) repairs everything
to packed vectors ``Sigma (n : nat). vector T n``, and the unpacking
machinery then produces ``zip``/``zip_with`` and the lemma over vectors
at a *particular* length — the step Devoid left to the proof engineer.
"""

from repro.cases.ornaments_example import run_scenario
from repro.kernel import nf, pretty
from repro.syntax.parser import parse


def main() -> None:
    scenario = run_scenario()
    env = scenario.env

    print("Step 1 — Devoid repair to packed vectors:")
    for result in scenario.packed_results:
        print(f"  {result}")
        print("   ", pretty(result.type, env=env)[:100], "...")

    print("\nStep 2 — unpacked to vectors at a particular length:")
    print(
        "  zip_with_is_zip_vect :",
        pretty(env.constant("zip_with_is_zip_vect").type, env=env),
    )

    # The derived functions compute.
    value = nf(
        env,
        parse(
            env,
            """
            zipv nat bool 2
              (vcons nat 4 1 (vcons nat 7 0 (vnil nat)))
              (vcons bool true 1 (vcons bool false 0 (vnil bool)))
            """,
        ),
    )
    print("\nzipv [4,7] [true,false] =")
    print(" ", pretty(value, env=env))


if __name__ == "__main__":
    main()
