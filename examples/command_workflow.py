#!/usr/bin/env python3
"""The vernacular workflow: driving repair with commands, as in Coq.

Pumpkin Pi is used from Coq through vernacular commands (``Repair ... in
...``, ``Repair module ...``).  This example drives the Section 2 repair
through the same textual surface.
"""

from repro.commands import CommandSession
from repro.stdlib import declare_list_type, make_env


def main() -> None:
    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    session = CommandSession(env)

    script = """
    (* the Section 2 workflow, as vernacular *)
    Configure list New.list
    Repair list New.list in rev_app_distr as New.rev_app_distr
    Decompile New.rev_app_distr
    Replay New.rev_app_distr
    Repair module list New.list prefix New
    Remove list
    """
    for result in session.run(script):
        print(f"> {result.command.strip()}")
        print(f"  {result.summary}")
        if result.text and "Decompile" in result.command:
            print()
            for line in result.text.splitlines():
                print(f"    {line}")
            print()

    print("Old list removed:", not env.has_inductive("list"))


if __name__ == "__main__":
    main()
