#!/usr/bin/env python3
"""The REPLICA user-study benchmark (Section 6.1, ``Swap.v``).

Builds the Figure 16 expression language with an ``EpsilonLogic``-style
semantics and the ``eval_eq_true_or_false`` theorem, then repairs the
development across every variant of the benchmark: the Figure 16 swap,
a same-type swap, renaming every constructor, a three-constructor
permutation, and a simultaneous permute+rename.  Also demonstrates the
lazily enumerated constructor mappings (24 for Figure 16; first mapping
of a 30-constructor Enum permutation found without enumerating 30!).
"""

import time

from repro.cases.replica import (
    declare_enum,
    declare_term_language,
    run_scenario,
    setup_environment,
)
from repro.core.search.swap import find_constructor_mappings


def main() -> None:
    start = time.time()
    variants = run_scenario()
    elapsed = time.time() - start
    print(f"All {len(variants)} REPLICA variants repaired in {elapsed:.2f}s:")
    for variant in variants:
        names = ", ".join(r.new_name for r in variant.results)
        print(f"  {variant.label}")
        print(f"    mapping  : {variant.mapping}")
        print(f"    repaired : {names}")

    # The 24 type-correct mappings of the Figure 16 change ("all other
    # 23 type-correct permutations", presented desired-first).
    env = setup_environment()
    declare_term_language(
        env,
        "Probe.Term",
        order=["Var", "Eq", "Int", "Plus", "Times", "Minus", "Choose"],
    )
    mappings = list(find_constructor_mappings(env, "Old.Term", "Probe.Term"))
    print(f"\nType-correct mappings for the Figure 16 swap: {len(mappings)}")
    print("  first (desired):", mappings[0])

    # A large and ambiguous permutation of a 30-constructor Enum: the
    # mapping space is 30! but the first candidate is produced lazily.
    declare_enum(env, "Enum", size=30)
    declare_enum(env, "Enum2", size=30)
    start = time.time()
    first = next(iter(find_constructor_mappings(env, "Enum", "Enum2")))
    print(
        f"\n30-constructor Enum: first of 30! mappings in "
        f"{time.time() - start:.3f}s: {first[:8]}..."
    )


if __name__ == "__main__":
    main()
