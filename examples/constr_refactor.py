#!/usr/bin/env python3
"""Factoring constructors out to bool (Section 3.1.1, Figure 4).

``J`` is ``I`` with its two constructors ``A`` and ``B`` pulled out to a
``bool`` hypothesis of a single constructor.  Telling the tool that ``A``
maps to ``true`` and ``B`` to ``false`` induces the equivalence
``I ~= J`` along which the whole boolean algebra (``neg``, ``and``,
``or``) and both De Morgan laws are repaired — ``constr_refactor.v``.
"""

from repro.cases.constr_refactor import run_scenario
from repro.kernel import pretty


def main() -> None:
    scenario = run_scenario()
    env = scenario.env

    print("Repaired along I ~= J (A -> true, B -> false):")
    for result in scenario.results:
        print(f"  {result}")

    print("\nRepaired function (compare Section 3.1.1):")
    print("  J.and =", pretty(env.constant("J.and").body, env=env))

    print("\nRepaired proofs:")
    print("  J.demorgan_1 :", pretty(env.constant("J.demorgan_1").type, env=env))
    print("  J.demorgan_2 :", pretty(env.constant("J.demorgan_2").type, env=env))


if __name__ == "__main__":
    main()
