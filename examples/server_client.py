#!/usr/bin/env python3
"""Repair the replica case over HTTP against a running repair server.

Start the server in one terminal::

    PYTHONPATH=src python -m repro.server --port 8433 --workers 2

then run this client in another::

    python examples/server_client.py [--port 8433]

(With no server listening, the client boots a private one on a free
port for the demo and shuts it down afterwards.)

The client exercises both halves of the server:

* **stateless batch repair** — POSTs the replica case
  (``eval_eq_true_or_false`` across the ``Old.Term ~ New0.Term``
  constructor swap, the paper's REPLICA user study) as a one-job
  manifest, prints the repaired name and its content digest, then
  repeats the POST to show the result-store cache tier answering
  without kernel work;
* **a named persistent session** — creates ``replica-demo``, runs the
  same repair as a vernacular command against the session's resident
  environment (boot paid once), and closes it.

Everything is stdlib ``urllib`` — the server speaks plain HTTP/JSON.
"""

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import urllib.error
import urllib.request

REPLICA_JOB = {
    "name": "replica/eval_eq_true_or_false",
    "setup": "repro.service.cases:replica_env",
    "target": "eval_eq_true_or_false",
    "config": {"kind": "auto", "a": "Old.Term", "b": "New0.Term"},
    "old": ["Old.Term"],
    "rename": {"kind": "prefix", "value": "New0."},
}


def call(base, method, path, body=None, timeout=300):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def spawn_server():
    """A private demo server on a free port (when none is running)."""
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = str(src) + (os.pathsep + existing if existing else "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.server",
            "--port", "0", "--workers", "2", "--no-store", "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        start_new_session=True,
    )
    info = json.loads(process.stdout.readline())
    return process, info["port"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8433)
    args = parser.parse_args()
    base = f"http://{args.host}:{args.port}"

    server = None
    try:
        status, health = call(base, "GET", "/healthz", timeout=10)
    except urllib.error.URLError:
        print(f"no server at {base}; booting a private one for the demo")
        server, port = spawn_server()
        base = f"http://127.0.0.1:{port}"
        status, health = call(base, "GET", "/healthz", timeout=10)
    try:
        if status != 200:
            print(f"server not healthy at {base}: {status} {health}")
            return 1
        print(f"server at {base} is {health['status']}")
        return run_demo(base)
    finally:
        if server is not None:
            server.send_signal(signal.SIGTERM)
            server.wait(timeout=45)


def run_demo(base) -> int:

    # -- Stateless batch repair, then the cache tier -----------------------
    manifest = {"batch": "replica-over-http", "jobs": [REPLICA_JOB]}
    status, report = call(base, "POST", "/v1/repair", manifest)
    if status != 200:
        print(f"repair failed: {status} {report}")
        return 1
    outcome = report["outcomes"][0]
    print(
        f"repaired {outcome['name']}: {outcome['status']} -> "
        f"{outcome['new_name']}  (digest {outcome['result_digest'][:16]}..., "
        f"{report['wall_time_s']:.2f}s)"
    )

    status, again = call(base, "POST", "/v1/repair", manifest)
    cached = again["outcomes"][0]
    print(
        f"rerun: {cached['status']} in {again['wall_time_s']:.3f}s "
        f"(same digest: {cached['result_digest'] == outcome['result_digest']})"
    )

    # -- The same repair through a named persistent session ----------------
    status, _ = call(
        base,
        "POST",
        "/v1/sessions",
        {"name": "replica-demo", "setup": REPLICA_JOB["setup"]},
    )
    if status not in (201, 409):  # 409: left over from a previous run
        print(f"session create failed: {status}")
        return 1
    status, result = call(
        base,
        "POST",
        "/v1/sessions/replica-demo/command",
        {
            "script": [
                "Configure Old.Term New0.Term.",
                "Repair Old.Term New0.Term in eval_eq_true_or_false.",
            ]
        },
    )
    if status != 200:
        print(f"session command failed: {status} {result}")
        return 1
    for entry in result["results"]:
        print(f"session: {entry['summary']}")
    call(base, "DELETE", "/v1/sessions/replica-demo")
    return 0


if __name__ == "__main__":
    sys.exit(main())
