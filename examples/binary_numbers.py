#!/usr/bin/env python3
"""Unary to binary numbers (Section 6.3, ``nonorn.v``).

A *manual* configuration for ``nat ~= N`` — ``N0``/``N.succ`` as the
dependent constructors, ``N.peano_rect`` as the dependent eliminator,
and the propositional reduction rule ``N.peano_rect_succ`` as ``Iota``.
The workflow:

1. ``Repair nat N in add as slow_add`` (fully automatic);
2. port ``add_n_Sm`` after the manual iota-expansion step;
3. prove ``add_fast_add`` (slow = fast binary addition) by Peano
   induction; and
4. transfer the theorem to fast binary addition.
"""

from repro.cases.binary import run_scenario
from repro.kernel import Const, mk_app, nf, pretty
from repro.syntax.parser import parse


def main() -> None:
    scenario = run_scenario()
    env = scenario.env

    print("Repair nat N in add as slow_add:")
    print("  slow_add :", pretty(scenario.slow_add.type, env=env))
    print("  slow_add =", pretty(scenario.slow_add.term, env=env))

    print("\nPorted proof (with Iota over N = N.peano_rect_succ):")
    print("  slow_add_n_Sm :", pretty(scenario.slow_add_n_Sm.type, env=env))

    print("\nAgreement with the fast stdlib addition:")
    print("  add_fast_add :", pretty(env.constant("add_fast_add").type, env=env))
    print("  N.add_n_Sm   :", pretty(env.constant("N.add_n_Sm").type, env=env))

    # slow_add really computes (logarithmically-represented numbers).
    def binary(k: int):
        return nf(env, parse(env, f"N.of_nat {k}"))

    total = nf(env, mk_app(Const("slow_add"), [binary(19), binary(23)]))
    print("\nslow_add 19 23 == 42:", total == binary(42))


if __name__ == "__main__":
    main()
